package config

import (
	"errors"
	"strings"
	"testing"
	"time"
)

func TestTransitionIdentityIsLive(t *testing.T) {
	for _, c := range []Config{ExactlyOncePreset(), ReplicatedService(), AtMostOncePreset()} {
		plan, err := PlanTransition(c, c)
		if err != nil {
			t.Fatalf("identity transition for %s: %v", c, err)
		}
		if plan.Class != TransitionLive || len(plan.Changed) != 0 {
			t.Fatalf("identity transition for %s: class=%v changed=%v", c, plan.Class, plan.Changed)
		}
	}
}

func TestTransitionClassification(t *testing.T) {
	exa := ExactlyOncePreset()
	rep := ReplicatedService()

	// The flagship swap: exactly-once -> total-order replicated service.
	// Ordering changes (drain); execution and acceptance change (live).
	plan, err := PlanTransition(exa, rep)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Class != TransitionDrain {
		t.Fatalf("exactly-once -> replicated-service: class=%v, want drain", plan.Class)
	}
	has := func(name string) bool {
		for _, c := range plan.Changed {
			if c == name {
				return true
			}
		}
		return false
	}
	if !has("ordering") || !has("execution") || !has("acceptance") {
		t.Fatalf("changed = %v, want ordering+execution+acceptance", plan.Changed)
	}

	// And back again.
	plan, err = PlanTransition(rep, exa)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Class != TransitionDrain {
		t.Fatalf("replicated-service -> exactly-once: class=%v, want drain", plan.Class)
	}

	// Acceptance limit alone is live.
	to := exa
	to.AcceptanceLimit = 2
	plan, err = PlanTransition(exa, to)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Class != TransitionLive || len(plan.Changed) != 1 || plan.Changed[0] != "acceptance" {
		t.Fatalf("acceptance-only: class=%v changed=%v", plan.Class, plan.Changed)
	}

	// Unique on/off alone is live.
	to = exa
	to.Unique = false
	plan, err = PlanTransition(exa, to)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Class != TransitionLive {
		t.Fatalf("unique-only: class=%v", plan.Class)
	}

	// Call synchrony is drain.
	to = exa
	to.Call = CallAsynchronous
	plan, err = PlanTransition(exa, to)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Class != TransitionDrain {
		t.Fatalf("call-synchrony: class=%v", plan.Class)
	}

	// A retransmission-timeout change is drain; the zero value normalizes
	// to the default, so 0 -> 20ms is NOT a change.
	to = exa
	to.RetransTimeout = 50 * time.Millisecond
	plan, err = PlanTransition(exa, to)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Class != TransitionDrain {
		t.Fatalf("retrans change: class=%v", plan.Class)
	}
	to.RetransTimeout = 20 * time.Millisecond
	from := exa
	from.RetransTimeout = 0
	plan, err = PlanTransition(from, to)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Changed) != 0 {
		t.Fatalf("normalized retrans: changed=%v", plan.Changed)
	}
}

func TestTransitionAtomicIllegal(t *testing.T) {
	// Adding atomic execution live is rejected with a diagnosable error.
	_, err := PlanTransition(ExactlyOncePreset(), AtMostOncePreset())
	if !errors.Is(err, ErrTransitionAtomic) {
		t.Fatalf("exactly-once -> at-most-once: err=%v, want ErrTransitionAtomic", err)
	}
	if !strings.Contains(err.Error(), "restart the node") {
		t.Fatalf("error is not diagnosable: %v", err)
	}
	// Removing it, likewise.
	if _, err := PlanTransition(AtMostOncePreset(), ExactlyOncePreset()); !errors.Is(err, ErrTransitionAtomic) {
		t.Fatalf("at-most-once -> exactly-once: err=%v", err)
	}
	// Re-parameterizing it, likewise.
	from, to := AtMostOncePreset(), AtMostOncePreset()
	to.AtomicDeltas = !from.AtomicDeltas
	if _, err := PlanTransition(from, to); !errors.Is(err, ErrTransitionAtomicParams) {
		t.Fatalf("atomic param change: err=%v", err)
	}
	// An invalid endpoint is rejected before classification.
	bad := ExactlyOncePreset()
	bad.Ordering = OrderTotal // total order requires unique + serial
	bad.Unique = false
	if _, err := PlanTransition(ExactlyOncePreset(), bad); err == nil {
		t.Fatal("invalid target config accepted")
	}
}

// TestTransitionMatrixGolden pins the transition matrix over the paper's 198
// enumerated configurations crossed with the dissemination dimension (flat,
// tree(2), tree(3) — D17): 594 configurations, 352836 ordered pairs. The
// atomic-execution illegality is orthogonal to dissemination, so illegal
// pairs scale by 9 (17424*9 = 156816). Live pairs require identical
// dissemination (a fanout change is drain), so they scale by 3 (1710*3 =
// 5130); everything else is drain.
func TestTransitionMatrixGolden(t *testing.T) {
	m := EnumerateTransitions()
	if m.Configs != 594 || m.Pairs != 352836 {
		t.Fatalf("matrix size: configs=%d pairs=%d", m.Configs, m.Pairs)
	}
	if m.Live+m.Drain+m.Illegal != m.Pairs {
		t.Fatalf("classes do not partition the pairs: %+v", m)
	}
	if m.Illegal != 156816 {
		t.Fatalf("illegal = %d, want 9*2*66*132 = 156816", m.Illegal)
	}
	if m.Live != 5130 || m.Drain != 190890 {
		t.Fatalf("live=%d drain=%d, want 5130/190890", m.Live, m.Drain)
	}
}

// TestTransitionDissemination pins the dissemination dimension's transition
// semantics: any shape or fanout change drains; flat->flat and same-k
// tree->tree are no-ops.
func TestTransitionDissemination(t *testing.T) {
	flat := ExactlyOncePreset()
	tree2, tree3 := flat, flat
	tree2.Dissemination, tree2.TreeFanout = DissTree, 2
	tree3.Dissemination, tree3.TreeFanout = DissTree, 3

	for _, tc := range []struct {
		from, to Config
		drain    bool
	}{
		{flat, tree3, true},
		{tree3, flat, true},
		{tree2, tree3, true},
		{tree3, tree3, false},
	} {
		plan, err := PlanTransition(tc.from, tc.to)
		if err != nil {
			t.Fatal(err)
		}
		if tc.drain {
			if plan.Class != TransitionDrain || len(plan.Changed) != 1 || plan.Changed[0] != "dissemination" {
				t.Fatalf("%s -> %s: class=%v changed=%v", tc.from, tc.to, plan.Class, plan.Changed)
			}
		} else if len(plan.Changed) != 0 {
			t.Fatalf("%s -> %s: changed=%v, want none", tc.from, tc.to, plan.Changed)
		}
	}

	// TreeFanout 0 normalizes to the default 3: tree(0) -> tree(3) is a no-op.
	tree0 := flat
	tree0.Dissemination = DissTree
	plan, err := PlanTransition(tree0, tree3)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Changed) != 0 {
		t.Fatalf("tree(default) -> tree(3): changed=%v, want none", plan.Changed)
	}
}
