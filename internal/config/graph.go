package config

// This file encodes the two structural figures of the paper as data, so
// the tooling can print them and the tests can check the implementation
// against them rather than transcribing prose.

// PropertyNode is one property box of Figure 2, with the properties it
// logically depends on (an edge A → B means B must hold for A to hold).
type PropertyNode struct {
	Name      string
	Category  string
	Variants  []string
	DependsOn []string
}

// PropertyGraph returns the semantic-property hierarchy of Figure 2.
func PropertyGraph() []PropertyNode {
	return []PropertyNode{
		{Name: "Failure semantics", Category: "failure",
			Variants: []string{"unique execution", "non-unique execution", "atomic execution", "non-atomic execution"}},
		{Name: "Call semantics", Category: "call",
			Variants: []string{"synchronous", "asynchronous"}},
		{Name: "Orphan handling", Category: "orphan",
			Variants: []string{"ignore orphans", "avoid orphan interference", "terminate orphans"}},
		{Name: "Communication", Category: "communication",
			Variants: []string{"reliable", "unreliable"}},
		{Name: "Termination", Category: "termination",
			Variants: []string{"bounded", "unbounded"}},
		{Name: "Ordering", Category: "ordering",
			Variants:  []string{"no order", "FIFO order", "total order"},
			DependsOn: []string{"Communication: reliable"}},
		{Name: "Acceptance", Category: "acceptance",
			Variants: []string{"ONE", "...", "ALL"}},
		{Name: "Collation", Category: "collation",
			Variants: []string{"user-supplied function"}},
		{Name: "Membership", Category: "membership",
			Variants: []string{"present", "absent"}},
	}
}

// ProtoNode is one micro-protocol box of Figure 4.
type ProtoNode struct {
	Name string
	// Requires lists micro-protocols that must also be configured.
	Requires []string
	// Excludes lists micro-protocols that must not be configured together
	// with this one (beyond the choice groups).
	Excludes []string
	// Minimal marks membership in the dashed minimal functional set.
	Minimal bool
}

// ChoiceGroup is a bold box of Figure 4: at most one member may be chosen;
// if Required, exactly one must be.
type ChoiceGroup struct {
	Name     string
	Members  []string
	Required bool
}

// DependencyGraph returns the micro-protocol dependency graph of Figure 4.
func DependencyGraph() ([]ProtoNode, []ChoiceGroup) {
	nodes := []ProtoNode{
		{Name: "RPC Main", Minimal: true},
		{Name: "Synchronous Call", Requires: []string{"RPC Main"}, Minimal: true},
		{Name: "Asynchronous Call", Requires: []string{"RPC Main"}, Minimal: true},
		{Name: "Acceptance", Requires: []string{"RPC Main"}, Minimal: true},
		{Name: "Collation", Requires: []string{"RPC Main"}, Minimal: true},
		{Name: "Reliable Communication", Requires: []string{"RPC Main"}},
		{Name: "Bounded Termination", Requires: []string{"RPC Main"}},
		{Name: "Unique Execution", Requires: []string{"RPC Main"}},
		{Name: "Serial Execution", Requires: []string{"RPC Main"}},
		{Name: "Atomic Execution", Requires: []string{"Serial Execution"}},
		{Name: "FIFO Order", Requires: []string{"Reliable Communication", "Unique Execution"}},
		{Name: "Total Order",
			Requires: []string{"Reliable Communication", "Unique Execution"},
			Excludes: []string{"Bounded Termination"}},
		{Name: "Causal Order",
			Requires: []string{"Reliable Communication", "Unique Execution"}},
		{Name: "Interference Avoidance", Requires: []string{"RPC Main"}},
		{Name: "Terminate Orphan", Requires: []string{"RPC Main"}},
		{Name: "Membership Service"},
	}
	groups := []ChoiceGroup{
		{Name: "call semantics", Members: []string{"Synchronous Call", "Asynchronous Call"}, Required: true},
		{Name: "ordering", Members: []string{"FIFO Order", "Total Order", "Causal Order"}},
		{Name: "orphan handling", Members: []string{"Interference Avoidance", "Terminate Orphan"}},
	}
	return nodes, groups
}

// SelectedProtocols returns the micro-protocol names a configuration
// selects, in canonical order, for checking against the graph.
func (c Config) SelectedProtocols() []string {
	names := []string{"RPC Main"}
	if c.Call == CallSynchronous {
		names = append(names, "Synchronous Call")
	} else {
		names = append(names, "Asynchronous Call")
	}
	names = append(names, "Acceptance", "Collation")
	if c.Reliable {
		names = append(names, "Reliable Communication")
	}
	if c.Bounded {
		names = append(names, "Bounded Termination")
	}
	if c.Unique {
		names = append(names, "Unique Execution")
	}
	if c.Execution == ExecSerial || c.Execution == ExecAtomic {
		names = append(names, "Serial Execution")
	}
	if c.Execution == ExecAtomic {
		names = append(names, "Atomic Execution")
	}
	switch c.Ordering {
	case OrderFIFO:
		names = append(names, "FIFO Order")
	case OrderTotal:
		names = append(names, "Total Order")
	case OrderCausal:
		names = append(names, "Causal Order")
	}
	switch c.Orphan {
	case OrphanAvoidInterference:
		names = append(names, "Interference Avoidance")
	case OrphanTerminate:
		names = append(names, "Terminate Orphan")
	}
	return names
}

// CheckAgainstGraph verifies a selection of micro-protocol names against
// the Figure 4 graph: every requirement present, no exclusion violated, and
// every choice group respected. It reports the violations found (empty for
// a legal selection). This is the graph-level cross-check used to validate
// that Config.Validate and Figure 4 agree.
func CheckAgainstGraph(selected []string) []string {
	nodes, groups := DependencyGraph()
	byName := make(map[string]ProtoNode, len(nodes))
	for _, n := range nodes {
		byName[n.Name] = n
	}
	has := make(map[string]bool, len(selected))
	for _, s := range selected {
		has[s] = true
	}

	var violations []string
	for _, s := range selected {
		n, ok := byName[s]
		if !ok {
			violations = append(violations, "unknown micro-protocol: "+s)
			continue
		}
		for _, req := range n.Requires {
			if !has[req] {
				violations = append(violations, s+" requires "+req)
			}
		}
		for _, ex := range n.Excludes {
			if has[ex] {
				violations = append(violations, s+" excludes "+ex)
			}
		}
	}
	for _, g := range groups {
		count := 0
		for _, m := range g.Members {
			if has[m] {
				count++
			}
		}
		if count > 1 {
			violations = append(violations, "more than one "+g.Name+" protocol selected")
		}
		if g.Required && count == 0 {
			violations = append(violations, "no "+g.Name+" protocol selected")
		}
	}
	return violations
}
