package config

import "mrpc/internal/core"

// Enumerate generates every legal configuration reachable by combining
// micro-protocol selections under the dependency graph of Figure 4, with
// acceptance and collation policies fixed (the paper fixes them "for
// fairness", since a group of n servers admits 2^n − 1 acceptance policies
// and infinitely many collation functions).
//
// The paper's §5 tally — two call-semantics choices, three orphan
// treatments, three execution properties, and eleven legal combinations of
// unique execution, reliable communication, termination and ordering —
// multiplies out to 198 services, and Enumerate returns exactly that many.
func Enumerate() []Config {
	var out []Config
	for _, call := range []CallSemantics{CallSynchronous, CallAsynchronous} {
		for _, orphan := range []OrphanMode{OrphanIgnore, OrphanAvoidInterference, OrphanTerminate} {
			for _, exec := range []ExecMode{ExecConcurrent, ExecSerial, ExecAtomic} {
				for _, unique := range []bool{false, true} {
					for _, reliable := range []bool{false, true} {
						for _, bounded := range []bool{false, true} {
							for _, order := range []OrderMode{OrderNone, OrderFIFO, OrderTotal} {
								c := Config{
									Call:            call,
									Reliable:        reliable,
									Bounded:         bounded,
									Unique:          unique,
									Execution:       exec,
									Ordering:        order,
									Orphan:          orphan,
									AcceptanceLimit: 1,
								}
								if c.Validate() == nil {
									out = append(out, c)
								}
							}
						}
					}
				}
			}
		}
	}
	return out
}

// Count returns the number of legal configurations (the paper's 198).
func Count() int { return len(Enumerate()) }

// CommClusterCount returns the number of legal combinations of unique
// execution, reliable communication, termination and ordering alone — the
// paper's "total of 11 possible choices".
func CommClusterCount() int {
	n := 0
	for _, unique := range []bool{false, true} {
		for _, reliable := range []bool{false, true} {
			for _, bounded := range []bool{false, true} {
				for _, order := range []OrderMode{OrderNone, OrderFIFO, OrderTotal} {
					c := Config{
						Call:            CallSynchronous,
						Reliable:        reliable,
						Bounded:         bounded,
						Unique:          unique,
						Execution:       ExecConcurrent,
						Ordering:        order,
						Orphan:          OrphanIgnore,
						AcceptanceLimit: 1,
					}
					if c.Validate() == nil {
						n++
					}
				}
			}
		}
	}
	return n
}

// --- presets ---------------------------------------------------------------

// ReadOne is the §5 example: a group RPC tuned for quick response to
// read-only requests — at-least-once semantics, acceptance 1, synchronous
// calls, reliable communication in the RPC layer, and bounded termination.
func ReadOne() Config {
	return Config{
		Call:            CallSynchronous,
		Reliable:        true,
		Bounded:         true,
		Execution:       ExecConcurrent,
		Ordering:        OrderNone,
		Orphan:          OrphanIgnore,
		AcceptanceLimit: 1,
	}
}

// AtLeastOncePreset is the basic reliable synchronous group RPC: calls may
// execute more than once under retransmission but every accepted call
// executed at least once.
func AtLeastOncePreset() Config {
	return Config{
		Call:            CallSynchronous,
		Reliable:        true,
		Execution:       ExecConcurrent,
		Ordering:        OrderNone,
		Orphan:          OrphanIgnore,
		AcceptanceLimit: 1,
	}
}

// ExactlyOncePreset adds unique execution: an accepted call has executed
// exactly once at each responding server.
func ExactlyOncePreset() Config {
	c := AtLeastOncePreset()
	c.Unique = true
	return c
}

// AtMostOncePreset adds atomic (and therefore serial) execution: even an
// unaccepted call is guaranteed to have executed atomically or not at all.
func AtMostOncePreset() Config {
	c := ExactlyOncePreset()
	c.Execution = ExecAtomic
	return c
}

// ReplicatedService is the state-machine-replication configuration: total
// order, unique execution, all functioning members must execute.
func ReplicatedService() Config {
	return Config{
		Call:            CallSynchronous,
		Reliable:        true,
		Unique:          true,
		Execution:       ExecSerial,
		Ordering:        OrderTotal,
		Orphan:          OrphanIgnore,
		AcceptanceLimit: core.AcceptAll,
	}
}
