package config

import (
	"errors"
	"fmt"
	"reflect"
	"time"

	"mrpc/internal/core"
)

// TransitionClass classifies how a legal reconfiguration must be applied to
// a running node (the dynamic companion of Figure 4: the dependency graph
// says which compositions exist, the transition class says how to move
// between two of them without violating either's guarantees).
type TransitionClass int

// Transition classes.
const (
	// TransitionLive transitions swap micro-protocols under the dispatch
	// barrier alone: in-flight calls keep the semantics they were issued
	// under, calls admitted after the swap get the new semantics, and
	// nothing needs to finish first. Changing only the acceptance limit,
	// collation policy, duplicate suppression, orphan handling, or the
	// serial/concurrent execution property is live.
	TransitionLive TransitionClass = iota + 1
	// TransitionDrain transitions must quiesce first: admission of new
	// calls stops and in-flight client calls run to completion before the
	// swap, because the changed property spans a call's whole lifetime
	// (its blocking discipline, its retransmission state, its deadline, or
	// its position in an inter-call order).
	TransitionDrain
)

// String returns the class name.
func (t TransitionClass) String() string {
	switch t {
	case TransitionLive:
		return "live"
	case TransitionDrain:
		return "drain"
	default:
		return fmt.Sprintf("class(%d)", int(t))
	}
}

// Transition is the plan for moving a running node between two legal
// configurations.
type Transition struct {
	// Class is the strongest requirement among the changed properties.
	Class TransitionClass
	// Changed names the properties that differ, in a fixed order.
	Changed []string
}

// Transition errors.
var (
	// ErrTransitionAtomic rejects adding or removing atomic execution on a
	// live node: the checkpoint chain's relationship to the in-memory
	// server state is established at Start (or recovery) and cannot be
	// re-established mid-incarnation — a checkpoint taken by a freshly
	// attached Atomic Execution would capture state produced by calls it
	// never logged, and removing it leaves a stale chain a later recovery
	// would wrongly restore. Restart the node to change atomicity.
	ErrTransitionAtomic = errors.New(
		"config: transition changes atomic execution on a live node; atomicity is fixed per incarnation (restart the node instead)")
	// ErrTransitionAtomicParams rejects re-parameterizing atomic execution
	// (delta mode, compaction cadence) live, for the same reason: the
	// checkpoint chain's shape is part of the incarnation's recovery
	// contract.
	ErrTransitionAtomicParams = errors.New(
		"config: transition changes atomic-execution parameters on a live node; the checkpoint chain's shape is fixed per incarnation (restart the node instead)")
)

func normRetrans(d time.Duration) time.Duration {
	if d <= 0 {
		return 20 * time.Millisecond
	}
	return d
}

func normBound(d time.Duration) time.Duration {
	if d <= 0 {
		return time.Second
	}
	return d
}

func normMisses(n int) int {
	if n <= 0 {
		return 3
	}
	return n
}

func normCompact(n int) int {
	if n <= 0 {
		return 16
	}
	return n
}

func collatePtr(f core.CollateFunc) uintptr {
	if f == nil {
		f = core.LastReply
	}
	return reflect.ValueOf(f).Pointer()
}

// PlanTransition validates a reconfiguration from one running configuration
// to another and classifies it. Both configurations must be legal on their
// own (Validate); on top of that, atomic execution may not be added,
// removed, or re-parameterized live. The returned plan carries the
// strongest class any changed property demands and the list of changed
// properties, for diagnostics.
func PlanTransition(from, to Config) (Transition, error) {
	if err := from.Validate(); err != nil {
		return Transition{}, fmt.Errorf("transition: current configuration: %w", err)
	}
	if err := to.Validate(); err != nil {
		return Transition{}, fmt.Errorf("transition: new configuration: %w", err)
	}
	if (from.Execution == ExecAtomic) != (to.Execution == ExecAtomic) {
		return Transition{}, ErrTransitionAtomic
	}
	if from.Execution == ExecAtomic &&
		(from.AtomicDeltas != to.AtomicDeltas ||
			normCompact(from.AtomicCompactEvery) != normCompact(to.AtomicCompactEvery)) {
		return Transition{}, ErrTransitionAtomicParams
	}

	t := Transition{Class: TransitionLive}
	changed := func(name string, class TransitionClass) {
		t.Changed = append(t.Changed, name)
		if class > t.Class {
			t.Class = class
		}
	}

	// Drain-class properties span a call's whole lifetime.
	if from.Call != to.Call {
		// The blocking discipline (who parks where, how results are
		// collected) is fixed when the call is admitted.
		changed("call", TransitionDrain)
	}
	if from.Reliable != to.Reliable ||
		(to.Reliable && normRetrans(from.RetransTimeout) != normRetrans(to.RetransTimeout)) {
		// Retransmission state is per in-flight call; the same-set
		// property the ordering protocols rely on must not see a gap.
		changed("reliable", TransitionDrain)
	}
	if from.Bounded != to.Bounded ||
		(to.Bounded && normBound(from.TimeBound) != normBound(to.TimeBound)) {
		// A call's deadline is promised at admission.
		changed("bounded", TransitionDrain)
	}
	if from.Ordering != to.Ordering {
		// Order is a relation between calls; calls admitted under two
		// different regimes have no defined relative order, so the old
		// regime's calls finish first (held ones are re-homed).
		changed("ordering", TransitionDrain)
	}
	if from.Dissemination != to.Dissemination ||
		from.EffectiveFanout() != to.EffectiveFanout() {
		// A frame's tree shape is stamped at send time and drives relay,
		// ack aggregation and repair at every hop until the frame settles;
		// mixing shapes mid-call would strand aggregation state (D17).
		changed("dissemination", TransitionDrain)
	}

	// Live-class properties act per call at a single point.
	if from.Unique != to.Unique {
		changed("unique", TransitionLive)
	}
	if from.Execution != to.Execution {
		changed("execution", TransitionLive)
	}
	if from.Orphan != to.Orphan ||
		(to.Orphan == OrphanTerminate &&
			(from.OrphanProbeInterval != to.OrphanProbeInterval ||
				normMisses(from.OrphanProbeMisses) != normMisses(to.OrphanProbeMisses))) {
		changed("orphan", TransitionLive)
	}
	if from.AcceptanceLimit != to.AcceptanceLimit {
		changed("acceptance", TransitionLive)
	}
	if collatePtr(from.Collate) != collatePtr(to.Collate) ||
		string(from.CollateInit) != string(to.CollateInit) {
		changed("collation", TransitionLive)
	}
	if normFlush(from.FlushSize) != normFlush(to.FlushSize) {
		// Batch size only shapes framing of future sends; in-flight batches
		// drain under whichever cap they were queued with.
		changed("flush", TransitionLive)
	}
	return t, nil
}

func normFlush(n int) int {
	if n <= 0 {
		return 16
	}
	return n
}

// TransitionMatrix summarizes PlanTransition over every ordered pair of the
// enumerated configurations — the 198 semantic services of Enumerate
// crossed with the dissemination dimension (flat, tree(2), tree(3)), which
// is orthogonal to the Figure 4 dependency graph (D17).
type TransitionMatrix struct {
	Configs int // enumerated configurations
	Pairs   int // ordered pairs, including identity
	Live    int
	Drain   int
	Illegal int
}

// EnumerateWithDissemination crosses the paper's 198 semantic services
// with the dissemination dimension: flat, tree(2) and tree(3). The
// dimension is orthogonal (every cross is legal), so the count is 594.
func EnumerateWithDissemination() []Config {
	base := Enumerate()
	all := make([]Config, 0, 3*len(base))
	for _, c := range base {
		all = append(all, c)
		for _, k := range []int{2, 3} {
			t := c
			t.Dissemination = DissTree
			t.TreeFanout = k
			all = append(all, t)
		}
	}
	return all
}

// EnumerateTransitions classifies every ordered pair of enumerated
// configurations (including the dissemination dimension). Identity pairs
// (from == to) count as live (an empty swap).
func EnumerateTransitions() TransitionMatrix {
	all := EnumerateWithDissemination()
	m := TransitionMatrix{Configs: len(all), Pairs: len(all) * len(all)}
	for _, from := range all {
		for _, to := range all {
			plan, err := PlanTransition(from, to)
			switch {
			case err != nil:
				m.Illegal++
			case plan.Class == TransitionDrain:
				m.Drain++
			default:
				m.Live++
			}
		}
	}
	return m
}
