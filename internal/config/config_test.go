package config

import (
	"errors"
	"strings"
	"testing"

	"mrpc/internal/core"
)

func valid() Config {
	return Config{
		Call:            CallSynchronous,
		Execution:       ExecConcurrent,
		Ordering:        OrderNone,
		Orphan:          OrphanIgnore,
		AcceptanceLimit: 1,
	}
}

func TestValidateAcceptsMinimal(t *testing.T) {
	if err := valid().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateDependencies(t *testing.T) {
	tests := []struct {
		name string
		mut  func(*Config)
		want error
	}{
		{"fifo needs reliable", func(c *Config) {
			c.Ordering, c.Unique = OrderFIFO, true
		}, ErrOrderingNeedsReliable},
		{"fifo needs unique", func(c *Config) {
			c.Ordering, c.Reliable = OrderFIFO, true
		}, ErrOrderingNeedsUnique},
		{"total needs reliable", func(c *Config) {
			c.Ordering, c.Unique = OrderTotal, true
		}, ErrOrderingNeedsReliable},
		{"total needs unique", func(c *Config) {
			c.Ordering, c.Reliable = OrderTotal, true
		}, ErrOrderingNeedsUnique},
		{"total excludes bounded", func(c *Config) {
			c.Ordering, c.Reliable, c.Unique, c.Bounded = OrderTotal, true, true, true
		}, ErrTotalOrderNoBounded},
		{"bad call", func(c *Config) { c.Call = 0 }, ErrBadCall},
		{"bad exec", func(c *Config) { c.Execution = 99 }, ErrBadExec},
		{"bad order", func(c *Config) { c.Ordering = 99 }, ErrBadOrder},
		{"bad orphan", func(c *Config) { c.Orphan = 99 }, ErrBadOrphan},
		{"bad acceptance", func(c *Config) { c.AcceptanceLimit = 0 }, ErrBadAcceptance},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			c := valid()
			tt.mut(&c)
			if err := c.Validate(); !errors.Is(err, tt.want) {
				t.Fatalf("err = %v, want %v", err, tt.want)
			}
		})
	}
}

func TestValidateAcceptsLegalOrderings(t *testing.T) {
	c := valid()
	c.Reliable, c.Unique = true, true
	for _, o := range []OrderMode{OrderNone, OrderFIFO, OrderTotal, OrderCausal} {
		c.Ordering = o
		if err := c.Validate(); err != nil {
			t.Fatalf("%v: %v", o, err)
		}
	}
	c.Ordering = OrderFIFO
	c.Bounded = true // FIFO + bounded is legal (unlike total)
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestFailureSemanticsMapping(t *testing.T) {
	// Figure 1.
	c := valid()
	if got := c.FailureSemantics(); got != AtLeastOnce {
		t.Fatalf("no unique, no atomic: %v", got)
	}
	c.Unique = true
	if got := c.FailureSemantics(); got != ExactlyOnce {
		t.Fatalf("unique, no atomic: %v", got)
	}
	c.Execution = ExecAtomic
	if got := c.FailureSemantics(); got != AtMostOnce {
		t.Fatalf("unique + atomic: %v", got)
	}
	// Atomic without unique is still classified at-least-once (Figure 1
	// has no row for it; execution may repeat).
	c.Unique = false
	if got := c.FailureSemantics(); got != AtLeastOnce {
		t.Fatalf("atomic without unique: %v", got)
	}
}

func TestEnumerationCount(t *testing.T) {
	all := Enumerate()
	if len(all) != 198 {
		t.Fatalf("Enumerate() = %d configurations, want the paper's 198", len(all))
	}
	if got := Count(); got != 198 {
		t.Fatalf("Count() = %d", got)
	}
	if got := CommClusterCount(); got != 11 {
		t.Fatalf("CommClusterCount() = %d, want the paper's 11", got)
	}
}

func TestEnumerationAllValidAndDistinct(t *testing.T) {
	seen := make(map[string]bool)
	for _, c := range Enumerate() {
		if err := c.Validate(); err != nil {
			t.Fatalf("enumerated invalid config %s: %v", c, err)
		}
		key := c.String()
		if seen[key] {
			t.Fatalf("duplicate configuration %s", key)
		}
		seen[key] = true
	}
}

func TestEnumerationMatchesGraphCheck(t *testing.T) {
	// Independent cross-check: every enumerated configuration's selected
	// micro-protocol set satisfies the Figure 4 graph, and mutating any
	// valid config into an illegal one is caught by the graph too.
	for _, c := range Enumerate() {
		if v := CheckAgainstGraph(c.SelectedProtocols()); len(v) != 0 {
			t.Fatalf("config %s violates graph: %v", c, v)
		}
	}
	// Total order without unique execution must be flagged.
	bad := []string{"RPC Main", "Synchronous Call", "Acceptance", "Collation",
		"Reliable Communication", "Total Order"}
	if v := CheckAgainstGraph(bad); len(v) == 0 {
		t.Fatal("graph check accepted total order without unique execution")
	}
	// Two call-semantics protocols must be flagged.
	bad = []string{"RPC Main", "Synchronous Call", "Asynchronous Call", "Acceptance", "Collation"}
	if v := CheckAgainstGraph(bad); len(v) == 0 {
		t.Fatal("graph check accepted two call-semantics protocols")
	}
	// Missing call semantics must be flagged.
	bad = []string{"RPC Main", "Acceptance", "Collation"}
	if v := CheckAgainstGraph(bad); len(v) == 0 {
		t.Fatal("graph check accepted a config with no call semantics")
	}
	// Unknown protocol must be flagged.
	if v := CheckAgainstGraph([]string{"RPC Main", "Synchronous Call", "Mystery"}); len(v) == 0 {
		t.Fatal("graph check accepted an unknown protocol")
	}
}

func TestEnumerationFactorization(t *testing.T) {
	// The paper's 198 = 2 x 3 x 3 x 11: verify each factor empirically.
	all := Enumerate()
	calls := map[CallSemantics]int{}
	orphans := map[OrphanMode]int{}
	execs := map[ExecMode]int{}
	for _, c := range all {
		calls[c.Call]++
		orphans[c.Orphan]++
		execs[c.Execution]++
	}
	if len(calls) != 2 || len(orphans) != 3 || len(execs) != 3 {
		t.Fatalf("factor cardinalities: calls=%d orphans=%d execs=%d", len(calls), len(orphans), len(execs))
	}
	for k, n := range calls {
		if n != 99 {
			t.Fatalf("call %v appears %d times, want 99", k, n)
		}
	}
	for k, n := range orphans {
		if n != 66 {
			t.Fatalf("orphan %v appears %d times, want 66", k, n)
		}
	}
	for k, n := range execs {
		if n != 66 {
			t.Fatalf("exec %v appears %d times, want 66", k, n)
		}
	}
}

func TestPresetsAreValid(t *testing.T) {
	for _, p := range []struct {
		name string
		cfg  Config
		want FailureSemantics
	}{
		{"ReadOne", ReadOne(), AtLeastOnce},
		{"AtLeastOnce", AtLeastOncePreset(), AtLeastOnce},
		{"ExactlyOnce", ExactlyOncePreset(), ExactlyOnce},
		{"AtMostOnce", AtMostOncePreset(), AtMostOnce},
		{"ReplicatedService", ReplicatedService(), ExactlyOnce},
	} {
		if err := p.cfg.Validate(); err != nil {
			t.Errorf("%s invalid: %v", p.name, err)
		}
		if got := p.cfg.FailureSemantics(); got != p.want {
			t.Errorf("%s semantics = %v, want %v", p.name, got, p.want)
		}
	}
}

func TestProtocolsInstantiation(t *testing.T) {
	c := valid()
	c.Reliable, c.Bounded, c.Unique = true, true, true
	c.Execution = ExecSerial
	c.Ordering = OrderFIFO
	c.Orphan = OrphanTerminate
	protos, err := c.Protocols(BuildDeps{})
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, p := range protos {
		names = append(names, p.Name())
	}
	joined := strings.Join(names, ",")
	for _, want := range []string{"RPC Main", "Synchronous Call", "Acceptance",
		"Collation", "Reliable Communication", "Bounded Termination",
		"Unique Execution", "Serial Execution", "FIFO Order", "Terminate Orphan"} {
		if !strings.Contains(joined, want) {
			t.Errorf("protocols %v missing %q", names, want)
		}
	}
	if len(protos) != 10 {
		t.Fatalf("got %d protocols: %v", len(protos), names)
	}
}

func TestProtocolsAtomicRequiresDeps(t *testing.T) {
	c := valid()
	c.Execution = ExecAtomic
	if _, err := c.Protocols(BuildDeps{}); err == nil {
		t.Fatal("atomic execution without deps accepted")
	}
}

func TestProtocolsRejectsInvalid(t *testing.T) {
	c := valid()
	c.Ordering = OrderTotal // missing reliable+unique
	if _, err := c.Protocols(BuildDeps{}); err == nil {
		t.Fatal("invalid config instantiated")
	}
}

func TestSelectedProtocolsAsync(t *testing.T) {
	c := valid()
	c.Call = CallAsynchronous
	c.Orphan = OrphanAvoidInterference
	c.Execution = ExecAtomic
	c.Ordering = OrderTotal
	c.Reliable, c.Unique = true, true
	names := strings.Join(c.SelectedProtocols(), ",")
	for _, want := range []string{"Asynchronous Call", "Interference Avoidance",
		"Atomic Execution", "Serial Execution", "Total Order"} {
		if !strings.Contains(names, want) {
			t.Errorf("selected %q missing %q", names, want)
		}
	}
}

func TestStrings(t *testing.T) {
	if CallSynchronous.String() != "synchronous" || CallAsynchronous.String() != "asynchronous" {
		t.Error("call strings")
	}
	if ExecConcurrent.String() != "concurrent" || ExecSerial.String() != "serial" || ExecAtomic.String() != "atomic" {
		t.Error("exec strings")
	}
	if OrderNone.String() != "none" || OrderFIFO.String() != "fifo" || OrderTotal.String() != "total" {
		t.Error("order strings")
	}
	if OrphanIgnore.String() != "ignore" || OrphanAvoidInterference.String() != "avoid-interference" || OrphanTerminate.String() != "terminate" {
		t.Error("orphan strings")
	}
	if AtLeastOnce.String() != "at least once" || ExactlyOnce.String() != "exactly once" || AtMostOnce.String() != "at most once" {
		t.Error("failure strings")
	}
	c := valid()
	c.AcceptanceLimit = core.AcceptAll
	if !strings.Contains(c.String(), "accept=ALL") {
		t.Errorf("String() = %q", c.String())
	}
	// Unknown enum values render diagnosably.
	if !strings.Contains(CallSemantics(9).String(), "9") ||
		!strings.Contains(ExecMode(9).String(), "9") ||
		!strings.Contains(OrderMode(9).String(), "9") ||
		!strings.Contains(OrphanMode(9).String(), "9") ||
		!strings.Contains(FailureSemantics(9).String(), "9") {
		t.Error("unknown enum strings")
	}
}

func TestPropertyGraphShape(t *testing.T) {
	props := PropertyGraph()
	if len(props) != 9 {
		t.Fatalf("property graph has %d nodes, want 9 (Figure 2)", len(props))
	}
	var ordering *PropertyNode
	for i := range props {
		if props[i].Name == "Ordering" {
			ordering = &props[i]
		}
	}
	if ordering == nil || len(ordering.DependsOn) == 0 {
		t.Fatal("ordering's dependency on reliable communication missing (Figure 2)")
	}
}

func TestDependencyGraphShape(t *testing.T) {
	nodes, groups := DependencyGraph()
	if len(nodes) != 16 {
		t.Fatalf("graph has %d nodes, want 16 (Figure 4's 15 + the Causal Order extension)", len(nodes))
	}
	minimal := 0
	for _, n := range nodes {
		if n.Minimal {
			minimal++
		}
	}
	if minimal != 5 {
		t.Fatalf("minimal set = %d nodes, want 5 (Main, 2 call semantics, Acceptance, Collation)", minimal)
	}
	if len(groups) != 3 {
		t.Fatalf("choice groups = %d, want 3", len(groups))
	}
}
