// Package config models the configurable part of the group RPC service:
// the semantic properties of §2 (Figure 2), the micro-protocol dependency
// graph of §5 (Figure 4), validation of user-selected configurations, and
// exhaustive enumeration of the legal configurations — reproducing the
// paper's count of 2 (call) × 3 (orphan) × 3 (execution) × 11
// (communication/termination/ordering/unique) = 198 possible services, with
// acceptance and collation policies fixed as the paper does for fairness.
package config

import (
	"errors"
	"fmt"
	"time"

	"mrpc/internal/core"
	"mrpc/internal/stable"
)

// CallSemantics selects synchronous or asynchronous call semantics (§2.1).
type CallSemantics int

// Call semantics variants.
const (
	CallSynchronous CallSemantics = iota + 1
	CallAsynchronous
)

// String returns the variant name.
func (c CallSemantics) String() string {
	switch c {
	case CallSynchronous:
		return "synchronous"
	case CallAsynchronous:
		return "asynchronous"
	default:
		return fmt.Sprintf("call(%d)", int(c))
	}
}

// ExecMode selects the server execution property (§4.4.5): unrestricted
// concurrent execution, serial execution, or atomic (checkpointed, which
// requires serial) execution.
type ExecMode int

// Execution modes.
const (
	ExecConcurrent ExecMode = iota + 1
	ExecSerial
	ExecAtomic // implies serial execution
)

// String returns the variant name.
func (e ExecMode) String() string {
	switch e {
	case ExecConcurrent:
		return "concurrent"
	case ExecSerial:
		return "serial"
	case ExecAtomic:
		return "atomic"
	default:
		return fmt.Sprintf("exec(%d)", int(e))
	}
}

// OrderMode selects the ordering property (§2.2).
type OrderMode int

// Ordering modes. OrderCausal is an extension beyond the paper's Figure 4
// (its §2.2 mentions causal order as a defined variant); it is therefore
// excluded from Enumerate, which reproduces the paper's 198 count.
const (
	OrderNone OrderMode = iota + 1
	OrderFIFO
	OrderTotal
	OrderCausal
)

// String returns the variant name.
func (o OrderMode) String() string {
	switch o {
	case OrderNone:
		return "none"
	case OrderFIFO:
		return "fifo"
	case OrderTotal:
		return "total"
	case OrderCausal:
		return "causal"
	default:
		return fmt.Sprintf("order(%d)", int(o))
	}
}

// OrphanMode selects the orphan-handling property (§2.1).
type OrphanMode int

// Orphan handling modes.
const (
	OrphanIgnore OrphanMode = iota + 1
	OrphanAvoidInterference
	OrphanTerminate
)

// String returns the variant name.
func (o OrphanMode) String() string {
	switch o {
	case OrphanIgnore:
		return "ignore"
	case OrphanAvoidInterference:
		return "avoid-interference"
	case OrphanTerminate:
		return "terminate"
	default:
		return fmt.Sprintf("orphan(%d)", int(o))
	}
}

// Dissemination selects how a group multicast reaches the members
// (DESIGN.md D17): flat direct fanout from the sender, or relay over a
// deterministic sender-rooted k-ary spanning tree. The zero value is flat,
// so existing configurations are unchanged.
type Dissemination int

// Dissemination modes.
const (
	// DissFlat sends every group multicast directly to all g members:
	// O(g) sender egress, no relaying. The default.
	DissFlat Dissemination = iota
	// DissTree relays the frozen wire frame over a k-ary spanning tree
	// (k = TreeFanout): O(k) sender egress, acks aggregated up the tree,
	// deterministic re-parenting on member failure.
	DissTree
)

// String returns the variant name.
func (d Dissemination) String() string {
	switch d {
	case DissFlat:
		return "flat"
	case DissTree:
		return "tree"
	default:
		return fmt.Sprintf("diss(%d)", int(d))
	}
}

// FailureSemantics is the traditional classification subsumed by the
// unique/atomic execution properties (Figure 1).
type FailureSemantics int

// Traditional failure semantics.
const (
	AtLeastOnce FailureSemantics = iota + 1
	ExactlyOnce
	AtMostOnce
)

// String returns the traditional name.
func (f FailureSemantics) String() string {
	switch f {
	case AtLeastOnce:
		return "at least once"
	case ExactlyOnce:
		return "exactly once"
	case AtMostOnce:
		return "at most once"
	default:
		return fmt.Sprintf("failure(%d)", int(f))
	}
}

// Config selects one variant of every configurable property. The zero
// value is not valid; start from a preset or fill every field.
type Config struct {
	// Call selects synchronous or asynchronous call semantics.
	Call CallSemantics
	// Reliable configures the Reliable Communication micro-protocol.
	Reliable bool
	// RetransTimeout is the retransmission period (Reliable only).
	RetransTimeout time.Duration
	// Bounded configures the Bounded Termination micro-protocol.
	Bounded bool
	// TimeBound is the per-call deadline (Bounded only).
	TimeBound time.Duration
	// Unique configures the Unique Execution micro-protocol.
	Unique bool
	// Execution selects the server execution property.
	Execution ExecMode
	// Ordering selects the call-ordering property.
	Ordering OrderMode
	// Orphan selects the orphan-handling property.
	Orphan OrphanMode
	// AcceptanceLimit is the number of successful server executions
	// required (k-of-n); core.AcceptAll means every functioning member.
	AcceptanceLimit int
	// Collate combines group replies; nil means last-reply-wins.
	Collate core.CollateFunc
	// CollateInit is the initial accumulator value for Collate.
	CollateInit []byte
	// AtomicDeltas enables incremental checkpoints for atomic execution
	// (the §4.4.5 optimization); the app must implement
	// core.DeltaCheckpointable.
	AtomicDeltas bool
	// AtomicCompactEvery bounds the delta chain length (default 16).
	AtomicCompactEvery int
	// OrphanProbeInterval, when positive with OrphanTerminate, enables
	// the paper's second orphan-detection option: servers probe clients
	// with in-progress work and kill the computations of clients that
	// miss OrphanProbeMisses consecutive probes.
	OrphanProbeInterval time.Duration
	// OrphanProbeMisses is the consecutive-miss threshold (default 3).
	OrphanProbeMisses int
	// FlushSize caps how many outbound messages one batch frame of the
	// flush queue carries (deviation D16). Zero means the default (16);
	// 1 disables coalescing (every message is its own frame). Changing it
	// is a live transition: a batch is a framing artifact, not a per-call
	// semantic promise.
	FlushSize int
	// Dissemination selects flat or tree-relay multicast (D17). Changing
	// it is a drain-class transition: the relay window, ack aggregation
	// and retransmission state all assume one tree shape per frame, so the
	// swap waits until no frame is in flight.
	Dissemination Dissemination
	// TreeFanout is the tree arity k (DissTree only). Zero means the
	// default (3); values below 2 are rejected otherwise.
	TreeFanout int
}

// Validation errors, matching the edges of Figure 4.
var (
	ErrOrderingNeedsReliable = errors.New("config: FIFO/total ordering requires reliable communication (Figure 2: every server must receive the same set of messages)")
	ErrOrderingNeedsUnique   = errors.New("config: FIFO/total ordering requires unique execution (Figure 4: the ordering implementations assume each request is admitted once)")
	ErrTotalOrderNoBounded   = errors.New("config: total ordering is incompatible with bounded termination (§4.4.6: a timed-out call would leave a hole in the total order)")
	ErrBadCall               = errors.New("config: call semantics must be synchronous or asynchronous")
	ErrBadExec               = errors.New("config: execution mode must be concurrent, serial or atomic")
	ErrBadOrder              = errors.New("config: ordering must be none, fifo or total")
	ErrBadOrphan             = errors.New("config: orphan handling must be ignore, avoid-interference or terminate")
	ErrBadAcceptance         = errors.New("config: acceptance limit must be at least 1")
	ErrBadDissemination      = errors.New("config: dissemination must be flat or tree")
	ErrBadTreeFanout         = errors.New("config: tree fanout must be at least 2 (or 0 for the default)")
)

// Validate checks the configuration against the dependency graph of
// Figure 4. It returns the first violated dependency.
func (c Config) Validate() error {
	switch c.Call {
	case CallSynchronous, CallAsynchronous:
	default:
		return ErrBadCall
	}
	switch c.Execution {
	case ExecConcurrent, ExecSerial, ExecAtomic:
	default:
		return ErrBadExec
	}
	switch c.Ordering {
	case OrderNone, OrderFIFO, OrderTotal, OrderCausal:
	default:
		return ErrBadOrder
	}
	switch c.Orphan {
	case OrphanIgnore, OrphanAvoidInterference, OrphanTerminate:
	default:
		return ErrBadOrphan
	}
	if c.AcceptanceLimit < 1 {
		return ErrBadAcceptance
	}
	switch c.Dissemination {
	case DissFlat, DissTree:
	default:
		return ErrBadDissemination
	}
	if c.Dissemination == DissTree && c.TreeFanout != 0 && c.TreeFanout < 2 {
		return ErrBadTreeFanout
	}
	if c.Ordering != OrderNone {
		if !c.Reliable {
			return ErrOrderingNeedsReliable
		}
		if !c.Unique {
			return ErrOrderingNeedsUnique
		}
	}
	if c.Ordering == OrderTotal && c.Bounded {
		return ErrTotalOrderNoBounded
	}
	return nil
}

// FailureSemantics classifies the configuration per Figure 1.
func (c Config) FailureSemantics() FailureSemantics {
	switch {
	case c.Unique && c.Execution == ExecAtomic:
		return AtMostOnce
	case c.Unique:
		return ExactlyOnce
	default:
		return AtLeastOnce
	}
}

// String summarizes the selected variants.
func (c Config) String() string {
	diss := "flat"
	if c.Dissemination == DissTree {
		diss = fmt.Sprintf("tree(%d)", c.EffectiveFanout())
	}
	return fmt.Sprintf("call=%s reliable=%t bounded=%t unique=%t exec=%s order=%s orphan=%s accept=%s diss=%s",
		c.Call, c.Reliable, c.Bounded, c.Unique, c.Execution, c.Ordering, c.Orphan, acceptString(c.AcceptanceLimit), diss)
}

// EffectiveFanout resolves the dissemination fanout the core layer runs
// with: 0 for flat, the defaulted tree arity otherwise.
func (c Config) EffectiveFanout() int {
	if c.Dissemination != DissTree {
		return 0
	}
	if c.TreeFanout < 2 {
		return 3
	}
	return c.TreeFanout
}

func acceptString(k int) string {
	if k >= core.AcceptAll {
		return "ALL"
	}
	return fmt.Sprintf("%d", k)
}

// BuildDeps carries the substrate objects that some micro-protocols need:
// Atomic Execution requires stable storage, the crash-surviving checkpoint
// cell (or, in delta mode, the checkpoint log), and the checkpointable
// server state.
type BuildDeps struct {
	Store *stable.Store
	Cell  *stable.Cell
	Log   *stable.Log
	State core.Checkpointable
}

// Protocols instantiates the micro-protocols selected by the configuration,
// in canonical attachment order. It validates first.
func (c Config) Protocols(deps BuildDeps) ([]core.MicroProtocol, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	if c.Execution == ExecAtomic && (deps.Store == nil || deps.Cell == nil || deps.State == nil) {
		return nil, errors.New("config: atomic execution requires stable store, checkpoint cell and checkpointable state")
	}

	// The minimal functional set (the dashed region of Figure 4): RPC
	// Main, one call-semantics protocol, Acceptance and Collation.
	protos := []core.MicroProtocol{&core.RPCMain{}}
	if c.Call == CallSynchronous {
		protos = append(protos, &core.SynchronousCall{})
	} else {
		protos = append(protos, &core.AsynchronousCall{})
	}
	protos = append(protos,
		&core.Acceptance{Limit: c.AcceptanceLimit},
		&core.Collation{Func: c.Collate, Init: c.CollateInit},
	)

	if c.Reliable {
		protos = append(protos, &core.ReliableCommunication{RetransTimeout: c.RetransTimeout})
	}
	if c.Bounded {
		protos = append(protos, &core.BoundedTermination{TimeBound: c.TimeBound})
	}
	if c.Unique {
		protos = append(protos, &core.UniqueExecution{})
	}
	switch c.Execution {
	case ExecSerial:
		protos = append(protos, &core.SerialExecution{})
	case ExecAtomic:
		protos = append(protos,
			&core.SerialExecution{},
			&core.AtomicExecution{
				Store:        deps.Store,
				Cell:         deps.Cell,
				State:        deps.State,
				Deltas:       c.AtomicDeltas,
				Log:          deps.Log,
				CompactEvery: c.AtomicCompactEvery,
			},
		)
	}
	switch c.Ordering {
	case OrderFIFO:
		// Asynchronous clients pipeline calls, so the network can reorder
		// a client's opening batch; strict initialization keeps FIFO live
		// in that case (see core.FIFOOrder).
		protos = append(protos, &core.FIFOOrder{StrictInit: c.Call == CallAsynchronous})
	case OrderTotal:
		protos = append(protos, &core.TotalOrder{})
	case OrderCausal:
		protos = append(protos, &core.CausalOrder{})
	}
	switch c.Orphan {
	case OrphanAvoidInterference:
		protos = append(protos, &core.InterferenceAvoidance{})
	case OrphanTerminate:
		protos = append(protos, &core.TerminateOrphan{
			ProbeInterval: c.OrphanProbeInterval,
			ProbeMisses:   c.OrphanProbeMisses,
		})
	}
	return protos, nil
}
