package nettcp

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"testing"

	"mrpc/internal/msg"
)

// FuzzReadFrame feeds arbitrary byte streams to the frame reader. The
// contract under fuzzing: readFrame either returns a frame of the declared
// length or an error — it never panics and never allocates for a length
// prefix above the limit, no matter what the prefix claims.
func FuzzReadFrame(f *testing.F) {
	// Seed: a well-formed frame around a real encoding, a truncated one,
	// an empty frame, and an oversized length prefix.
	m := &msg.NetMsg{Type: msg.OpCall, ID: 3, Client: 1, Sender: 1, Args: []byte("seed")}
	wire := m.Encode()
	var buf bytes.Buffer
	w := bufio.NewWriter(&buf)
	writeFrame(w, wire)
	w.Flush()
	good := append([]byte(nil), buf.Bytes()...)
	f.Add(good)
	f.Add(good[:len(good)-3])
	f.Add([]byte{0, 0, 0, 0})
	huge := binary.BigEndian.AppendUint32(nil, 1<<31)
	f.Add(append(huge, 'x'))

	const limit = 1 << 16
	f.Fuzz(func(t *testing.T, data []byte) {
		r := bufio.NewReader(bytes.NewReader(data))
		frame, err := readFrame(r, limit)
		if err != nil {
			return
		}
		if len(frame) > limit {
			t.Fatalf("frame of %d bytes exceeds limit %d", len(frame), limit)
		}
		if len(data) < 4+len(frame) {
			t.Fatalf("frame of %d bytes from %d input bytes", len(frame), len(data))
		}
	})
}

// FuzzHandshake feeds arbitrary bytes to the handshake parser: error or a
// valid ProcID, never a panic, and the round-trip of a generated hello
// must parse back to the same id.
func FuzzHandshake(f *testing.F) {
	f.Add(appendHandshake(nil, 1))
	f.Add(appendHandshake(nil, msg.ProcID(1<<30)))
	f.Add([]byte("mRPC"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		id, err := readHandshake(bytes.NewReader(data))
		if err != nil {
			return
		}
		again, err2 := readHandshake(bytes.NewReader(appendHandshake(nil, id)))
		if err2 != nil || again != id {
			t.Fatalf("handshake round-trip: id %d -> %d, err %v", id, again, err2)
		}
	})
}
