package nettcp

import (
	"bufio"
	"bytes"
	"fmt"
	"testing"
)

// BenchmarkTCPFrame measures the framing layer alone — length-prefix
// write plus read-and-allocate — without sockets, isolating the per-frame
// overhead nettcp adds on top of the v1 wire encoding.
func BenchmarkTCPFrame(b *testing.B) {
	for _, size := range []int{64, 1024, 16384} {
		b.Run(fmt.Sprintf("%dB", size), func(b *testing.B) {
			wire := make([]byte, size)
			var buf bytes.Buffer
			w := bufio.NewWriter(&buf)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				buf.Reset()
				w.Reset(&buf)
				if err := writeFrame(w, wire); err != nil {
					b.Fatal(err)
				}
				if err := w.Flush(); err != nil {
					b.Fatal(err)
				}
				got, err := readFrame(&buf, defaultMaxFrame)
				if err != nil || len(got) != size {
					b.Fatalf("read %d bytes, err %v", len(got), err)
				}
			}
		})
	}
}
