package nettcp

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"mrpc/internal/msg"
)

// Wire framing: every message travels as a 4-byte big-endian length prefix
// followed by the standard msg encoding (the same bytes netsim carries
// with EncodeOnWire, so a frame captured on either substrate decodes
// identically). A connection opens with a fixed 9-byte handshake in each
// direction — magic, transport version, ProcID — before any frame flows:
//
//	[4] magic "mRPC"
//	[1] version (1)
//	[4] ProcID (big-endian)
//
// The dialer sends first and verifies the listener's reply names the
// process it meant to reach, catching stale or misconfigured peer maps at
// connect time instead of as silent misdelivery.

const (
	handshakeVersion = 1
	handshakeLen     = 9

	// defaultMaxFrame bounds a frame's declared length. A corrupt or
	// hostile length prefix must never drive allocation: readFrame
	// rejects the prefix before allocating anything.
	defaultMaxFrame = 16 << 20
)

var handshakeMagic = [4]byte{'m', 'R', 'P', 'C'}

// Framing and handshake errors.
var (
	ErrFrameTooLarge = errors.New("nettcp: frame length exceeds limit")
	ErrBadHandshake  = errors.New("nettcp: bad handshake")
)

// appendHandshake appends the 9-byte hello for process id.
func appendHandshake(buf []byte, id msg.ProcID) []byte {
	buf = append(buf, handshakeMagic[:]...)
	buf = append(buf, handshakeVersion)
	return binary.BigEndian.AppendUint32(buf, uint32(id))
}

// readHandshake reads and validates one hello, returning the peer's
// claimed process id.
func readHandshake(r io.Reader) (msg.ProcID, error) {
	var buf [handshakeLen]byte
	if _, err := io.ReadFull(r, buf[:]); err != nil {
		return 0, fmt.Errorf("%w: %v", ErrBadHandshake, err)
	}
	if [4]byte(buf[:4]) != handshakeMagic {
		return 0, fmt.Errorf("%w: bad magic %q", ErrBadHandshake, buf[:4])
	}
	if buf[4] != handshakeVersion {
		return 0, fmt.Errorf("%w: version %d, want %d", ErrBadHandshake, buf[4], handshakeVersion)
	}
	return msg.ProcID(binary.BigEndian.Uint32(buf[5:])), nil
}

// writeFrame writes one length-prefixed frame into the buffered writer.
// The caller decides when to Flush (frames written back-to-back coalesce
// into one syscall, the socket-level analogue of the D16 batch frames).
func writeFrame(w *bufio.Writer, wire []byte) error {
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(wire)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(wire)
	return err
}

// readFrame reads one length-prefixed frame into a fresh buffer. The
// buffer is freshly allocated per frame and never recycled, so
// msg.DecodeShared may borrow from it (D13). A length prefix above max is
// rejected before any payload allocation, so a corrupt or hostile prefix
// cannot drive memory use.
func readFrame(r io.Reader, max int) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := int(binary.BigEndian.Uint32(hdr[:]))
	if n > max {
		return nil, fmt.Errorf("%w: %d > %d", ErrFrameTooLarge, n, max)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	return buf, nil
}
