package nettcp

import (
	"bufio"
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/rand"
	"crypto/tls"
	"crypto/x509"
	"crypto/x509/pkix"
	"encoding/binary"
	"math/big"
	"net"
	"sync"
	"testing"
	"time"

	"mrpc/internal/clock"
	"mrpc/internal/msg"
	"mrpc/internal/transport"
)

// collector accumulates delivered messages for one endpoint.
type collector struct {
	mu   sync.Mutex
	msgs []*msg.NetMsg
}

func (c *collector) handle(m *msg.NetMsg) {
	c.mu.Lock()
	c.msgs = append(c.msgs, m)
	c.mu.Unlock()
}

func (c *collector) count() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.msgs)
}

func attach(t *testing.T, tr *Transport, id msg.ProcID) (transport.Endpoint, *collector) {
	t.Helper()
	c := &collector{}
	ep, err := tr.Attach(id, c.handle)
	if err != nil {
		t.Fatal(err)
	}
	return ep, c
}

func call(id msg.CallID) *msg.NetMsg {
	return &msg.NetMsg{Type: msg.OpCall, ID: id, Client: 1, Sender: 1}
}

// waitFor polls cond until it holds or the deadline passes. Unlike netsim,
// a TCP transport cannot Quiesce across the socket: a written frame is in
// the kernel, not yet in the peer's handler.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timeout waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// reservePort grabs a free loopback port and releases it, so a test can
// hand a fixed address to two successive transports (restart scenarios).
func reservePort(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

func TestPushDelivery(t *testing.T) {
	tr := New(clock.NewReal(), Options{})
	defer tr.Stop()
	a, _ := attach(t, tr, 1)
	_, cb := attach(t, tr, 2)

	for i := 0; i < 10; i++ {
		a.Push(2, call(msg.CallID(i)))
	}
	waitFor(t, "10 deliveries", func() bool { return cb.count() == 10 })
	st := tr.Stats()
	if st.Sent != 10 || st.Delivered != 10 {
		t.Fatalf("stats = %+v", st)
	}
	if eg := a.Stats().Egress; eg != 10 {
		t.Fatalf("egress = %d, want 10", eg)
	}
}

func TestMulticastSharesOneEncodingAndSelfDelivers(t *testing.T) {
	tr := New(clock.NewReal(), Options{})
	defer tr.Stop()
	a, ca := attach(t, tr, 1)
	_, cb := attach(t, tr, 2)
	_, cc := attach(t, tr, 3)

	m := call(7)
	m.Args = []byte("payload")
	a.Multicast(msg.Group{1, 2, 3}, m)
	waitFor(t, "multicast delivery", func() bool {
		return ca.count() == 1 && cb.count() == 1 && cc.count() == 1
	})
	if !m.Frozen() {
		t.Fatal("multicast did not freeze the message")
	}
	// Self-delivery is excluded from egress: a loopback push costs the
	// sender nothing on a real NIC.
	if eg := a.Stats().Egress; eg != 2 {
		t.Fatalf("egress = %d, want 2", eg)
	}
	ca.mu.Lock()
	got := ca.msgs[0]
	ca.mu.Unlock()
	if got == m {
		t.Fatal("self-delivery bypassed the codec round-trip")
	}
	if string(got.Args) != "payload" {
		t.Fatalf("self-delivered args = %q", got.Args)
	}
}

func TestUnknownDestinationIsDownDrop(t *testing.T) {
	tr := New(clock.NewReal(), Options{})
	defer tr.Stop()
	a, _ := attach(t, tr, 1)
	a.Push(9, call(1))
	tr.Quiesce()
	if st := tr.Stats(); st.DownDrops != 1 || st.Delivered != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestDownEndpointNeitherSendsNorReceives(t *testing.T) {
	tr := New(clock.NewReal(), Options{})
	defer tr.Stop()
	a, _ := attach(t, tr, 1)
	b, cb := attach(t, tr, 2)

	a.Push(2, call(1))
	waitFor(t, "first delivery", func() bool { return cb.count() == 1 })

	b.SetUp(false)
	a.Push(2, call(2))
	waitFor(t, "down drop", func() bool { return tr.Stats().DownDrops == 1 })

	a.SetUp(false)
	a.Push(2, call(3)) // discarded at source
	if got := tr.Stats().Sent; got != 2 {
		t.Fatalf("sent = %d, want 2 (down sender must not send)", got)
	}

	a.SetUp(true)
	b.SetUp(true)
	a.Push(2, call(4))
	waitFor(t, "recovery delivery", func() bool { return cb.count() == 2 })
}

func TestDuplicateAttachRejected(t *testing.T) {
	tr := New(clock.NewReal(), Options{})
	defer tr.Stop()
	attach(t, tr, 1)
	if _, err := tr.Attach(1, nil); err == nil {
		t.Fatal("second Attach of id 1 accepted")
	}
}

// TestReconnectAfterRestart is the handshake/reconnect state machine's
// core scenario: the destination process dies (its transport stops), comes
// back on the same address under a new transport instance, and the
// sender's writer thread re-establishes the link — counting a reconnect —
// with no action from the caller. Frames sent while the peer is down are
// simply lost (legal substrate loss).
func TestReconnectAfterRestart(t *testing.T) {
	addr2 := reservePort(t)
	clk := clock.NewReal()
	sender := New(clk, Options{
		Peers:    map[msg.ProcID]string{2: addr2},
		RetryMin: 5 * time.Millisecond,
		RetryMax: 20 * time.Millisecond,
	})
	defer sender.Stop()
	a, _ := attach(t, sender, 1)

	receiver := New(clk, Options{Peers: map[msg.ProcID]string{2: addr2}})
	_, cb := attach(t, receiver, 2)
	a.Push(2, call(1))
	waitFor(t, "pre-restart delivery", func() bool { return cb.count() == 1 })

	receiver.Stop() // the member restarts

	receiver2 := New(clk, Options{Peers: map[msg.ProcID]string{2: addr2}})
	defer receiver2.Stop()
	_, cb2 := attach(t, receiver2, 2)

	// Keep offering frames: those hitting the dead window drop, then the
	// writer redials and traffic flows again.
	waitFor(t, "post-restart delivery", func() bool {
		a.Push(2, call(2))
		return cb2.count() > 0
	})
	if rc := sender.Stats().Reconnects; rc < 1 {
		t.Fatalf("reconnects = %d, want >= 1", rc)
	}
}

// TestHandshakeRejectsWrongProcess: a stale peer map points id 2 at an
// address where process 3 actually listens. The dialer must refuse the
// link at handshake time — nothing may be delivered to the wrong process.
func TestHandshakeRejectsWrongProcess(t *testing.T) {
	wrong := New(clock.NewReal(), Options{})
	defer wrong.Stop()
	_, cw := attach(t, wrong, 3)
	wrongAddr := wrong.Addr(3)

	sender := New(clock.NewReal(), Options{
		Peers:    map[msg.ProcID]string{2: wrongAddr},
		RetryMin: time.Millisecond,
		RetryMax: 5 * time.Millisecond,
	})
	defer sender.Stop()
	a, _ := attach(t, sender, 1)

	a.Push(2, call(1))
	waitFor(t, "handshake rejection drop", func() bool { return sender.Stats().Dropped >= 1 })
	if cw.count() != 0 {
		t.Fatal("frame delivered to the wrong process")
	}
}

func TestCorruptInboundFrameClosesConnNeverPanics(t *testing.T) {
	tr := New(clock.NewReal(), Options{MaxFrame: 1 << 16})
	defer tr.Stop()
	_, cb := attach(t, tr, 2)

	dialRaw := func() net.Conn {
		t.Helper()
		c, err := net.Dial("tcp", tr.Addr(2))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.Write(appendHandshake(nil, 99)); err != nil {
			t.Fatal(err)
		}
		if _, err := readHandshake(c); err != nil {
			t.Fatal(err)
		}
		return c
	}

	expectClosed := func(c net.Conn) {
		t.Helper()
		c.SetReadDeadline(time.Now().Add(5 * time.Second))
		buf := make([]byte, 1)
		if _, err := c.Read(buf); err == nil {
			t.Fatal("connection still open after poison frame")
		}
		c.Close()
	}

	// Oversized length prefix: rejected before allocation, conn closed.
	c := dialRaw()
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], 1<<20)
	c.Write(hdr[:])
	expectClosed(c)

	// Well-framed garbage: codec error, conn closed, no panic.
	c = dialRaw()
	w := bufio.NewWriter(c)
	writeFrame(w, []byte{0xde, 0xad, 0xbe, 0xef})
	w.Flush()
	expectClosed(c)

	if cb.count() != 0 {
		t.Fatal("garbage was delivered")
	}
}

func selfSignedTLS(t *testing.T) (server, client *tls.Config) {
	t.Helper()
	key, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	tmpl := &x509.Certificate{
		SerialNumber: big.NewInt(1),
		Subject:      pkix.Name{CommonName: "mrpcnode"},
		NotBefore:    time.Now().Add(-time.Hour),
		NotAfter:     time.Now().Add(time.Hour),
		IPAddresses:  []net.IP{net.IPv4(127, 0, 0, 1)},
	}
	der, err := x509.CreateCertificate(rand.Reader, tmpl, tmpl, &key.PublicKey, key)
	if err != nil {
		t.Fatal(err)
	}
	leaf, err := x509.ParseCertificate(der)
	if err != nil {
		t.Fatal(err)
	}
	pool := x509.NewCertPool()
	pool.AddCert(leaf)
	cert := tls.Certificate{Certificate: [][]byte{der}, PrivateKey: key, Leaf: leaf}
	server = &tls.Config{Certificates: []tls.Certificate{cert}}
	client = &tls.Config{RootCAs: pool} // verified against the 127.0.0.1 IP SAN
	return server, client
}

func TestTLSRoundTrip(t *testing.T) {
	server, client := selfSignedTLS(t)
	tr := New(clock.NewReal(), Options{ServerTLS: server, ClientTLS: client})
	defer tr.Stop()
	a, _ := attach(t, tr, 1)
	_, cb := attach(t, tr, 2)

	m := call(5)
	m.Args = []byte("secret")
	a.Push(2, m)
	waitFor(t, "TLS delivery", func() bool { return cb.count() == 1 })
	cb.mu.Lock()
	got := cb.msgs[0]
	cb.mu.Unlock()
	if string(got.Args) != "secret" {
		t.Fatalf("args = %q", got.Args)
	}
}

// TestStopWithDeadPeerDoesNotHang: frames queued toward an unreachable
// address must not wedge Stop or Quiesce — the dial-failure path drains
// the queue and retires every flight count.
func TestStopWithDeadPeerDoesNotHang(t *testing.T) {
	dead := reservePort(t)
	tr := New(clock.NewReal(), Options{
		Peers:       map[msg.ProcID]string{9: dead},
		DialTimeout: 100 * time.Millisecond,
		RetryMin:    5 * time.Millisecond,
	})
	a, _ := attach(t, tr, 1)
	for i := 0; i < 50; i++ {
		a.Push(9, call(msg.CallID(i)))
	}
	done := make(chan struct{})
	go func() {
		tr.Quiesce()
		tr.Stop()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("Stop hung on a dead peer's backlog")
	}
}

func TestSendAfterStopIsDiscarded(t *testing.T) {
	tr := New(clock.NewReal(), Options{})
	a, _ := attach(t, tr, 1)
	attach(t, tr, 2)
	tr.Stop()
	a.Push(2, call(1)) // must not panic or hang
	a.Multicast(msg.Group{1, 2}, call(2))
	if st := tr.Stats(); st.Sent != 0 {
		t.Fatalf("sends admitted after Stop: %+v", st)
	}
}

// TestBatchFramesTravel pins that OpBatch frames — the flusher's one-frame
// -per-destination optimisation — cross the socket intact and are counted.
func TestBatchFramesTravel(t *testing.T) {
	tr := New(clock.NewReal(), Options{})
	defer tr.Stop()
	a, _ := attach(t, tr, 1)
	_, cb := attach(t, tr, 2)

	inner1 := call(1)
	inner2 := call(2)
	batch := msg.NewBatch(1, []*msg.NetMsg{inner1, inner2})
	a.Push(2, batch)
	waitFor(t, "batch delivery", func() bool { return cb.count() == 1 })
	if st := tr.Stats(); st.Batches != 1 {
		t.Fatalf("batches = %d, want 1", st.Batches)
	}
	cb.mu.Lock()
	got := cb.msgs[0]
	cb.mu.Unlock()
	subs := got.Batch
	if len(subs) != 2 || subs[0].ID != 1 || subs[1].ID != 2 {
		t.Fatalf("batch decoded to %d subs", len(subs))
	}
}
