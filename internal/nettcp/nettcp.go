// Package nettcp is the real-socket implementation of the transport seam:
// TCP (TLS-optional) carrying the same length-framed wire encoding the
// simulator round-trips with EncodeOnWire, between endpoints that may live
// in different OS processes.
//
// The substrate contract is deliberately weak (see package transport): a
// frame may be lost whenever a connection is down, a queue is full, or a
// write fails mid-stream, and nettcp makes no attempt to hide that —
// reliability, ordering and termination belong to the micro-protocols
// above the seam. What nettcp does own is connection management: each
// endpoint keeps one outbound connection per peer, established lazily by a
// dedicated writer thread that redials with exponential backoff and
// re-verifies the magic/version/ProcID handshake on every (re)connect, so
// a restarted peer is picked up without any action from the protocols.
//
// Every endpoint listens (on the address the static peer map assigns it,
// or an ephemeral loopback port when the map has none), so a single
// Transport can host a whole group in-process over real loopback sockets —
// the shape the cross-transport conformance tests use — or exactly one
// endpoint per production process. Deliveries run on the same claim-based
// worker pool as netsim: an arrival never waits behind another arrival's
// blocked handler. All goroutines are spawned through internal/proc, and
// time is only observed through the injected clock (which must advance in
// real time — socket I/O does not simulate).
package nettcp

import (
	"bufio"
	"crypto/tls"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"mrpc/internal/clock"
	"mrpc/internal/msg"
	"mrpc/internal/proc"
	"mrpc/internal/transport"
)

var (
	_ transport.Transport = (*Transport)(nil)
	_ transport.Endpoint  = (*Endpoint)(nil)
)

// Options configures a Transport.
type Options struct {
	// Peers maps process ids to "host:port" listen/dial addresses — the
	// shared static membership map of the deployment. An attached id with
	// no entry listens on an ephemeral loopback port (in-process tests);
	// a destination with no entry (and no local attachment) is counted as
	// a DownDrop.
	Peers map[msg.ProcID]string
	// ServerTLS, when non-nil, wraps every listener; ClientTLS, when
	// non-nil, wraps every dialed connection. Set both (or neither) on
	// every member of a group.
	ServerTLS *tls.Config
	ClientTLS *tls.Config
	// DialTimeout bounds one connect + handshake attempt. Default 2s.
	DialTimeout time.Duration
	// RetryMin and RetryMax bound the writer's exponential redial backoff
	// after a failed connect. Defaults 25ms and 500ms.
	RetryMin, RetryMax time.Duration
	// QueueDepth is the per-peer outbound frame queue; a full queue drops
	// the frame (legal substrate loss). Default 256.
	QueueDepth int
	// MaxFrame bounds an inbound frame's declared length; a larger length
	// prefix closes the connection before any allocation. Default 16 MiB.
	MaxFrame int
}

func (o Options) withDefaults() Options {
	if o.DialTimeout <= 0 {
		o.DialTimeout = 2 * time.Second
	}
	if o.RetryMin <= 0 {
		o.RetryMin = 25 * time.Millisecond
	}
	if o.RetryMax < o.RetryMin {
		o.RetryMax = 500 * time.Millisecond
		if o.RetryMax < o.RetryMin {
			o.RetryMax = o.RetryMin
		}
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 256
	}
	if o.MaxFrame <= 0 {
		o.MaxFrame = defaultMaxFrame
	}
	return o
}

// Transport is a TCP transport instance: a factory of listening endpoints
// sharing one peer map and one set of counters.
type Transport struct {
	clk  clock.Clock
	opts Options

	mu      sync.Mutex
	eps     map[msg.ProcID]*Endpoint
	addrs   map[msg.ProcID]string // peer map + auto-listen actual addresses
	stopped bool

	// In-flight accounting, mirroring netsim: each admitted delivery —
	// a queued outbound frame, a decoded inbound frame, a self-delivery —
	// is counted under mu (send side) or before dispatch (receive side)
	// and retired when the frame leaves our hands: written to a socket,
	// dropped, or handed to a handler that returned.
	flightMu sync.Mutex
	flightC  sync.Cond
	inflight int

	sent, delivered, dropped, downDrops, batches, reconnects atomic.Int64
}

// New creates a TCP transport using clk for backoff and deadline timing.
// clk must advance in real time (clock.NewReal or a tick-driven hybrid):
// socket I/O cannot be simulated forward.
func New(clk clock.Clock, o Options) *Transport {
	o = o.withDefaults()
	t := &Transport{
		clk:   clk,
		opts:  o,
		eps:   make(map[msg.ProcID]*Endpoint),
		addrs: make(map[msg.ProcID]string, len(o.Peers)),
	}
	for id, addr := range o.Peers {
		t.addrs[id] = addr
	}
	t.flightC.L = &t.flightMu
	return t
}

func (t *Transport) addFlight(k int) {
	t.flightMu.Lock()
	t.inflight += k
	t.flightMu.Unlock()
}

func (t *Transport) doneFlight() {
	t.flightMu.Lock()
	t.inflight--
	if t.inflight == 0 {
		t.flightC.Broadcast()
	}
	t.flightMu.Unlock()
}

func (t *Transport) waitFlight() {
	t.flightMu.Lock()
	for t.inflight > 0 {
		t.flightC.Wait()
	}
	t.flightMu.Unlock()
}

// dropFrame retires one admitted frame as lost.
func (t *Transport) dropFrame() {
	t.dropped.Add(1)
	t.doneFlight()
}

// Addr returns the address process id listens on: the peer-map entry, or
// the actual ephemeral address once the id is attached locally. Empty when
// unknown.
func (t *Transport) Addr(id msg.ProcID) string {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.addrs[id]
}

// Endpoint is one process's attachment point on the TCP transport. It owns
// a listener for inbound traffic and one lazily-created writer thread per
// outbound peer.
type Endpoint struct {
	tr *Transport
	id msg.ProcID

	mu      sync.Mutex
	handler transport.Handler
	up      bool

	// Delivery worker pool — the same claim-based discipline as netsim:
	// dispatch enqueues only after reserving a parked worker, so a blocked
	// handler never delays an unrelated arrival.
	wmu    sync.Mutex
	idle   int
	closed bool
	mail   chan *msg.NetMsg

	// Outbound peer links, created on first send to each destination.
	pmu      sync.Mutex
	peers    map[msg.ProcID]*peer
	ioClosed bool

	// Inbound connections, tracked so Stop can unblock their readers.
	connsMu sync.Mutex
	conns   map[net.Conn]struct{}

	ln       net.Listener
	acceptTh *proc.Thread

	egress, ingress atomic.Int64
}

// maxIdleWorkers bounds how many idle delivery workers an endpoint parks
// (same sizing rationale as netsim).
const maxIdleWorkers = 2

// Attach starts listening for process id and returns its endpoint. The
// listen address comes from Options.Peers; absent an entry the endpoint
// binds an ephemeral loopback port and records it so other local endpoints
// can reach it. Attaching an id twice is an error.
func (t *Transport) Attach(id msg.ProcID, h transport.Handler) (transport.Endpoint, error) {
	t.mu.Lock()
	if t.stopped {
		t.mu.Unlock()
		return nil, fmt.Errorf("nettcp: transport stopped")
	}
	if _, ok := t.eps[id]; ok {
		t.mu.Unlock()
		return nil, fmt.Errorf("nettcp: process %d already attached", id)
	}
	addr := t.addrs[id]
	t.mu.Unlock()

	auto := addr == ""
	if auto {
		addr = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("nettcp: listen for process %d: %w", id, err)
	}
	if t.opts.ServerTLS != nil {
		ln = tls.NewListener(ln, t.opts.ServerTLS)
	}

	e := &Endpoint{
		tr:      t,
		id:      id,
		handler: h,
		up:      true,
		mail:    make(chan *msg.NetMsg, maxIdleWorkers),
		peers:   make(map[msg.ProcID]*peer),
		conns:   make(map[net.Conn]struct{}),
		ln:      ln,
	}
	t.mu.Lock()
	if t.stopped {
		t.mu.Unlock()
		ln.Close()
		return nil, fmt.Errorf("nettcp: transport stopped")
	}
	if _, ok := t.eps[id]; ok {
		t.mu.Unlock()
		ln.Close()
		return nil, fmt.Errorf("nettcp: process %d already attached", id)
	}
	t.eps[id] = e
	if auto {
		t.addrs[id] = ln.Addr().String()
	}
	t.mu.Unlock()

	e.acceptTh = proc.Go(func(*proc.Thread) { e.runAccept(ln) })
	return e, nil
}

// ID returns the endpoint's process id.
func (e *Endpoint) ID() msg.ProcID { return e.id }

// SetHandler replaces the delivery handler.
func (e *Endpoint) SetHandler(h transport.Handler) {
	e.mu.Lock()
	e.handler = h
	e.mu.Unlock()
}

// SetUp marks the endpoint up or down. A down endpoint neither sends nor
// receives — sends are discarded at the source and inbound frames at
// delivery time — but its listener keeps accepting, so bringing the
// endpoint back up needs no reconnect.
func (e *Endpoint) SetUp(up bool) {
	e.mu.Lock()
	e.up = up
	e.mu.Unlock()
}

// Up reports whether the endpoint is up.
func (e *Endpoint) Up() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.up
}

// Stats returns a snapshot of the endpoint's traffic counters.
func (e *Endpoint) Stats() transport.EndpointStats {
	return transport.EndpointStats{Egress: e.egress.Load(), Ingress: e.ingress.Load()}
}

// Push sends m to a single destination. The message is frozen and encoded
// once; a relayed frame forwards its shared wire bytes (D17) without
// re-encoding, exactly as the simulator does with EncodeOnWire.
func (e *Endpoint) Push(to msg.ProcID, m *msg.NetMsg) {
	e.mu.Lock()
	up := e.up
	e.mu.Unlock()
	if !up {
		return
	}
	m.Freeze()
	wire := m.Wire()
	if wire == nil {
		wire = m.Encode()
	}
	t := e.tr
	t.mu.Lock()
	if t.stopped {
		t.mu.Unlock()
		return
	}
	t.sent.Add(1)
	if m.Type == msg.OpBatch {
		t.batches.Add(1)
	}
	self, known := e.admit(to)
	t.mu.Unlock()
	e.forward(to, wire, self, known)
}

// Multicast sends m to every member of the group, including the sender's
// own process when it is a member. The group is admitted under one
// critical section and every destination shares the one wire encoding.
func (e *Endpoint) Multicast(group msg.Group, m *msg.NetMsg) {
	e.mu.Lock()
	up := e.up
	e.mu.Unlock()
	if !up {
		return
	}
	m.Freeze()
	wire := m.Wire()
	if wire == nil {
		wire = m.Encode()
	}
	var planBuf [8]msg.ProcID
	remote := planBuf[:0]
	selfDeliver := false
	t := e.tr
	t.mu.Lock()
	if t.stopped {
		t.mu.Unlock()
		return
	}
	for _, to := range group {
		t.sent.Add(1)
		self, known := e.admit(to)
		if self {
			selfDeliver = true
		} else if known {
			remote = append(remote, to)
		}
	}
	t.mu.Unlock()
	for _, to := range remote {
		e.enqueue(to, wire)
	}
	if selfDeliver {
		e.deliverSelf(wire)
	}
}

// admit performs the under-lock part of sending to one destination:
// egress accounting, destination lookup, flight count. Callers hold t.mu.
// It returns (self, known); a count has been taken for every admitted
// destination (self==true or known==true).
func (e *Endpoint) admit(to msg.ProcID) (self, known bool) {
	t := e.tr
	if to == e.id {
		t.addFlight(1)
		return true, true
	}
	e.egress.Add(1)
	if t.addrs[to] == "" {
		t.downDrops.Add(1)
		return false, false
	}
	t.addFlight(1)
	return false, true
}

// forward settles one Push admission outside the transport lock.
func (e *Endpoint) forward(to msg.ProcID, wire []byte, self, known bool) {
	switch {
	case self:
		e.deliverSelf(wire)
	case known:
		e.enqueue(to, wire)
	}
}

// deliverSelf short-circuits a send to the endpoint's own process: no
// socket, but the frame still round-trips the codec so a self-delivery
// observes exactly what a remote would.
func (e *Endpoint) deliverSelf(wire []byte) {
	m, err := msg.DecodeShared(wire)
	if err != nil {
		// Our own encoding failed to decode: a codec bug, not a network
		// fault — surface it loudly.
		panic(fmt.Sprintf("nettcp: wire codec round-trip: %v", err))
	}
	e.dispatch(m)
}

// enqueue hands an admitted frame to the destination's writer thread. A
// full queue or a closing link drops the frame — legal substrate loss.
func (e *Endpoint) enqueue(to msg.ProcID, wire []byte) {
	p := e.peerFor(to)
	if p == nil {
		e.tr.dropFrame()
		return
	}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		e.tr.dropFrame()
		return
	}
	select {
	case p.q <- wire:
		p.mu.Unlock()
	default:
		p.mu.Unlock()
		e.tr.dropFrame()
	}
}

// peerFor returns (lazily creating) the writer link toward to, or nil when
// the endpoint's I/O is shutting down.
func (e *Endpoint) peerFor(to msg.ProcID) *peer {
	e.pmu.Lock()
	defer e.pmu.Unlock()
	if e.ioClosed {
		return nil
	}
	if p, ok := e.peers[to]; ok {
		return p
	}
	p := &peer{to: to, q: make(chan []byte, e.tr.opts.QueueDepth)}
	p.th = proc.Go(func(th *proc.Thread) { e.runPeer(p, th) })
	e.peers[to] = p
	return p
}

// runAccept accepts inbound connections until the listener closes.
func (e *Endpoint) runAccept(ln net.Listener) {
	for {
		c, err := ln.Accept()
		if err != nil {
			return
		}
		if !e.trackConn(c) {
			c.Close()
			return
		}
		proc.Go(func(*proc.Thread) { e.runReader(c) })
	}
}

func (e *Endpoint) trackConn(c net.Conn) bool {
	e.connsMu.Lock()
	defer e.connsMu.Unlock()
	if e.conns == nil {
		return false
	}
	e.conns[c] = struct{}{}
	return true
}

func (e *Endpoint) untrackConn(c net.Conn) {
	e.connsMu.Lock()
	if e.conns != nil {
		delete(e.conns, c)
	}
	e.connsMu.Unlock()
}

// runReader serves one inbound connection: answer the handshake, then
// decode and dispatch frames until the stream ends. Any framing, codec, or
// handshake error closes the connection — never a panic: these bytes come
// from another process.
func (e *Endpoint) runReader(c net.Conn) {
	defer e.untrackConn(c)
	defer c.Close()
	c.SetDeadline(e.tr.clk.Now().Add(e.tr.opts.DialTimeout))
	br := bufio.NewReader(c)
	if _, err := readHandshake(br); err != nil {
		return
	}
	if _, err := c.Write(appendHandshake(make([]byte, 0, handshakeLen), e.id)); err != nil {
		return
	}
	c.SetDeadline(time.Time{})
	for {
		wire, err := readFrame(br, e.tr.opts.MaxFrame)
		if err != nil {
			return
		}
		m, err := msg.DecodeShared(wire)
		if err != nil {
			return
		}
		e.tr.addFlight(1)
		e.dispatch(m)
	}
}

// dispatch hands m to a parked worker when one is free to claim it, and
// spawns a fresh worker otherwise (netsim's claim-based pool; see its
// dispatch for the invariants). Workers are spawned through proc.Go —
// nettcp has no exemption from the goroutine-discipline rule.
func (e *Endpoint) dispatch(m *msg.NetMsg) {
	e.wmu.Lock()
	if e.closed {
		e.wmu.Unlock()
		e.tr.doneFlight()
		return
	}
	if e.idle > 0 {
		e.idle-- // reserve the worker: the mailbox send below cannot block
		e.wmu.Unlock()
		e.mail <- m
		return
	}
	e.wmu.Unlock()
	proc.Go(func(*proc.Thread) { e.work(m) })
}

// work delivers first, then joins the endpoint's worker pool: park (up to
// the idle quota) and drain claimed deliveries until the pool is retired.
func (e *Endpoint) work(first *msg.NetMsg) {
	m := first
	for {
		e.deliver(m)
		e.wmu.Lock()
		if e.closed || e.idle >= maxIdleWorkers {
			e.wmu.Unlock()
			return
		}
		e.idle++
		e.wmu.Unlock()
		var ok bool
		if m, ok = <-e.mail; !ok {
			return
		}
	}
}

// deliver hands m to the handler on the calling goroutine.
func (e *Endpoint) deliver(m *msg.NetMsg) {
	defer e.tr.doneFlight()
	e.mu.Lock()
	h, up := e.handler, e.up
	e.mu.Unlock()
	if !up || h == nil {
		e.tr.downDrops.Add(1)
		return
	}
	e.tr.delivered.Add(1)
	e.ingress.Add(1)
	h(m)
}

// Stats returns a snapshot of the transport counters.
func (t *Transport) Stats() transport.Stats {
	return transport.Stats{
		Sent:       t.sent.Load(),
		Delivered:  t.delivered.Load(),
		Dropped:    t.dropped.Load(),
		DownDrops:  t.downDrops.Load(),
		Batches:    t.batches.Load(),
		Reconnects: t.reconnects.Load(),
	}
}

// Quiesce waits until no locally observable delivery work remains: queued
// outbound frames, decoded inbound frames, running handlers. A frame
// already written to a socket is done from this side's point of view;
// cross-process callers poll protocol state on top (see transport.Quiesce).
func (t *Transport) Quiesce() {
	t.waitFlight()
}

// Stop shuts the transport down: listeners close, writer threads are
// reaped (their queued frames retired as drops), inbound connections are
// closed, in-flight deliveries finish, and the worker pools are retired.
// Further sends are silently discarded.
func (t *Transport) Stop() {
	t.mu.Lock()
	if t.stopped {
		t.mu.Unlock()
		t.waitFlight()
		return
	}
	t.stopped = true
	eps := make([]*Endpoint, 0, len(t.eps))
	for _, e := range t.eps {
		eps = append(eps, e)
	}
	t.mu.Unlock()

	for _, e := range eps {
		e.shutdownIO()
	}
	t.waitFlight()
	for _, e := range eps {
		e.wmu.Lock()
		if !e.closed {
			e.closed = true
			close(e.mail)
		}
		e.wmu.Unlock()
	}
}

// shutdownIO tears down an endpoint's socket machinery: the listener and
// accept loop, every peer writer (killed, its connection closed to unblock
// a stuck write, then its queue drained so each admitted frame's flight
// count is retired), and every tracked inbound connection.
func (e *Endpoint) shutdownIO() {
	e.ln.Close()
	if e.acceptTh != nil {
		<-e.acceptTh.Done()
	}

	e.pmu.Lock()
	e.ioClosed = true
	peers := make([]*peer, 0, len(e.peers))
	for _, p := range e.peers {
		peers = append(peers, p)
	}
	e.pmu.Unlock()
	for _, p := range peers {
		p.shutdown()
		p.th.Kill()
	}
	for _, p := range peers {
		<-p.th.Done()
		for {
			select {
			case <-p.q:
				e.tr.dropFrame()
			default:
				goto drained
			}
		}
	drained:
	}

	e.connsMu.Lock()
	conns := make([]net.Conn, 0, len(e.conns))
	for c := range e.conns {
		conns = append(conns, c)
	}
	e.conns = nil
	e.connsMu.Unlock()
	for _, c := range conns {
		c.Close()
	}
}
