package nettcp

import (
	"bufio"
	"crypto/tls"
	"fmt"
	"net"
	"sync"
	"time"

	"mrpc/internal/clock"
	"mrpc/internal/msg"
	"mrpc/internal/proc"
)

// peer is one outbound link: a bounded frame queue drained by a dedicated
// writer thread that owns the connection lifecycle (dial, handshake,
// reconnect with backoff). The SNIPPETS reconnect-client idiom, adapted:
// connection state lives entirely in the writer; senders only ever touch
// the queue.
type peer struct {
	to msg.ProcID
	q  chan []byte
	th *proc.Thread

	// mu guards conn and closed. conn is published here (the writer also
	// keeps it in a local) so shutdown can close it and unblock a stuck
	// write; closed stops both new enqueues and the adoption of a
	// connection a killed writer was still dialing.
	mu     sync.Mutex
	conn   net.Conn
	closed bool
}

// adopt publishes a freshly dialed connection. It reports false when the
// link is shutting down, in which case the caller must close c.
func (p *peer) adopt(c net.Conn) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return false
	}
	p.conn = c
	return true
}

func (p *peer) clearConn() {
	p.mu.Lock()
	p.conn = nil
	p.mu.Unlock()
}

// shutdown marks the link closed and closes any live connection, which
// unblocks a writer stuck in a backpressured write.
func (p *peer) shutdown() {
	p.mu.Lock()
	p.closed = true
	c := p.conn
	p.conn = nil
	p.mu.Unlock()
	if c != nil {
		c.Close()
	}
}

// runPeer is the writer loop for one outbound link. Frames come off the
// queue one at a time; the connection is (re)established lazily when a
// frame needs it. Failure policy, in line with the weak substrate
// contract: a failed dial drops the frame in hand AND drains the queue
// (so Quiesce never waits on a dead peer's backlog), then backs off
// exponentially; a failed write drops the frame, closes the connection,
// and redials when the next frame arrives. The buffered writer is flushed
// only when the queue is momentarily empty, so back-to-back frames
// coalesce into one syscall.
func (e *Endpoint) runPeer(p *peer, th *proc.Thread) {
	t := e.tr
	var (
		conn    net.Conn
		w       *bufio.Writer
		backoff = t.opts.RetryMin
		wasUp   bool // a connection has been established before
	)
	defer func() {
		if conn != nil {
			conn.Close()
		}
	}()
	for {
		var wire []byte
		select {
		case wire = <-p.q:
		case <-th.Killed():
			return
		}
		if th.IsKilled() {
			t.dropFrame()
			continue // drain fast; the empty-queue select above exits
		}
		if conn == nil {
			c, err := e.dial(p.to)
			if err == nil && !p.adopt(c) {
				c.Close()
				t.dropFrame()
				return
			}
			if err != nil {
				t.dropFrame()
			drain:
				for {
					select {
					case <-p.q:
						t.dropFrame()
					default:
						break drain
					}
				}
				select {
				case <-clock.After(t.clk, backoff):
				case <-th.Killed():
					return
				}
				backoff *= 2
				if backoff > t.opts.RetryMax {
					backoff = t.opts.RetryMax
				}
				continue
			}
			conn = c
			w = bufio.NewWriter(conn)
			backoff = t.opts.RetryMin
			if wasUp {
				t.reconnects.Add(1)
			}
			wasUp = true
		}
		err := writeFrame(w, wire)
		if err == nil && len(p.q) == 0 {
			err = w.Flush()
		}
		if err != nil {
			t.dropFrame()
			conn.Close()
			p.clearConn()
			conn, w = nil, nil
			continue
		}
		t.doneFlight() // written: the frame has left our hands
	}
}

// dial connects to peer `to`, optionally wraps TLS, and runs the
// handshake: send our hello, read the listener's, verify it names the
// process we meant to reach (a stale or misconfigured peer map fails here,
// at connect time, instead of as silent misdelivery).
func (e *Endpoint) dial(to msg.ProcID) (net.Conn, error) {
	t := e.tr
	addr := t.Addr(to)
	if addr == "" {
		return nil, fmt.Errorf("nettcp: no address for process %d", to)
	}
	c, err := net.DialTimeout("tcp", addr, t.opts.DialTimeout)
	if err != nil {
		return nil, err
	}
	if cfg := t.opts.ClientTLS; cfg != nil {
		// tls.Client does not derive ServerName from the address the way
		// tls.Dial does; fill it in from the dialed host so a bare RootCAs
		// config verifies against the peer's SAN.
		if cfg.ServerName == "" && !cfg.InsecureSkipVerify {
			cfg = cfg.Clone()
			if host, _, err := net.SplitHostPort(addr); err == nil {
				cfg.ServerName = host
			}
		}
		c = tls.Client(c, cfg)
	}
	c.SetDeadline(t.clk.Now().Add(t.opts.DialTimeout))
	if _, err := c.Write(appendHandshake(make([]byte, 0, handshakeLen), e.id)); err != nil {
		c.Close()
		return nil, err
	}
	got, err := readHandshake(c)
	if err != nil {
		c.Close()
		return nil, err
	}
	if got != to {
		c.Close()
		return nil, fmt.Errorf("%w: dialed process %d, listener claims %d", ErrBadHandshake, to, got)
	}
	c.SetDeadline(time.Time{})
	return c, nil
}
