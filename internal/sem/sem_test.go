package sem

import (
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"

	"mrpc/internal/clock"
)

func TestPVBasic(t *testing.T) {
	s := New(2)
	s.P()
	s.P()
	if got := s.Count(); got != 0 {
		t.Fatalf("count = %d, want 0", got)
	}
	s.V()
	if got := s.Count(); got != 1 {
		t.Fatalf("count = %d, want 1", got)
	}
	s.P() // must not block
}

func TestPBlocksUntilV(t *testing.T) {
	s := New(0)
	acquired := make(chan struct{})
	go func() {
		s.P()
		close(acquired)
	}()
	select {
	case <-acquired:
		t.Fatal("P returned without a V")
	case <-time.After(10 * time.Millisecond):
	}
	s.V()
	select {
	case <-acquired:
	case <-time.After(time.Second):
		t.Fatal("P did not return after V")
	}
}

func TestVWakesFIFO(t *testing.T) {
	s := New(0)
	const n = 8
	order := make(chan int, n)
	for i := 0; i < n; i++ {
		i := i
		go func() {
			s.P()
			order <- i
		}()
		// Wait until this waiter is enqueued before starting the next, so
		// the wait-list order is exactly 0..n-1.
		for s.Waiters() != i+1 {
			time.Sleep(100 * time.Microsecond)
		}
	}
	// Release one at a time and observe who wakes.
	for i := 0; i < n; i++ {
		s.V()
		select {
		case got := <-order:
			if got != i {
				t.Fatalf("V %d woke waiter %d (want FIFO)", i, got)
			}
		case <-time.After(time.Second):
			t.Fatalf("V %d woke nobody", i)
		}
	}
}

func TestTryP(t *testing.T) {
	s := New(1)
	if !s.TryP() {
		t.Fatal("TryP on count 1 failed")
	}
	if s.TryP() {
		t.Fatal("TryP on count 0 succeeded")
	}
	s.V()
	if !s.TryP() {
		t.Fatal("TryP after V failed")
	}
}

func TestPTimeout(t *testing.T) {
	s := New(0)
	t0 := time.Now()
	if s.PTimeout(clock.NewReal(), 20*time.Millisecond) {
		t.Fatal("PTimeout acquired a unit that was never released")
	}
	if elapsed := time.Since(t0); elapsed < 15*time.Millisecond {
		t.Fatalf("PTimeout returned after %v, want ~20ms", elapsed)
	}

	s.V()
	if !s.PTimeout(clock.NewReal(), 20*time.Millisecond) {
		t.Fatal("PTimeout failed with a unit available")
	}

	// A timed-out waiter must not consume a later V: the unit must remain
	// for the next P.
	if s.PTimeout(clock.NewReal(), time.Millisecond) {
		t.Fatal("unexpected acquisition")
	}
	s.V()
	if !s.TryP() {
		t.Fatal("the V after a timed-out waiter was lost")
	}
}

func TestPTimeoutRace(t *testing.T) {
	// Hammer the V-races-timeout path: no unit may be lost or duplicated.
	for i := 0; i < 200; i++ {
		s := New(0)
		res := make(chan bool, 1)
		go func() { res <- s.PTimeout(clock.NewReal(), 50*time.Microsecond) }()
		time.Sleep(50 * time.Microsecond)
		s.V()
		got := <-res
		if got {
			// Waiter took the unit: none may remain.
			if s.TryP() {
				t.Fatal("unit duplicated in V/timeout race")
			}
		} else {
			// Waiter timed out: the unit must remain.
			if !s.TryP() {
				t.Fatal("unit lost in V/timeout race")
			}
		}
	}
}

func TestReset(t *testing.T) {
	s := New(0)
	done := make(chan struct{})
	var released atomic.Int32
	for i := 0; i < 3; i++ {
		go func() {
			s.P()
			released.Add(1)
			done <- struct{}{}
		}()
	}
	time.Sleep(20 * time.Millisecond)
	if s.Waiters() != 3 {
		t.Fatalf("waiters = %d, want 3", s.Waiters())
	}
	s.Reset(1)
	for i := 0; i < 3; i++ {
		select {
		case <-done:
		case <-time.After(time.Second):
			t.Fatal("Reset did not wake all waiters")
		}
	}
	if got := s.Count(); got != 1 {
		t.Fatalf("count after Reset(1) = %d, want 1", got)
	}
}

func TestConcurrentPV(t *testing.T) {
	// With equal numbers of P and V, every P must eventually return and
	// the final count must equal the initial count.
	const workers = 16
	const rounds = 200
	s := New(0)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				s.V()
				s.P()
			}
		}()
	}
	doneCh := make(chan struct{})
	go func() { wg.Wait(); close(doneCh) }()
	select {
	case <-doneCh:
	case <-time.After(10 * time.Second):
		t.Fatal("concurrent P/V deadlocked")
	}
	if got := s.Count(); got != 0 {
		t.Fatalf("final count = %d, want 0", got)
	}
}

func TestQuickSemaphoreConservation(t *testing.T) {
	// Property: for any initial count c (0..8) and sequence of V counts,
	// after performing all Vs and then exactly c + sum(vs) Ps, the count
	// is 0 and no P blocked.
	f := func(c uint8, vs []uint8) bool {
		init := int(c % 8)
		s := New(init)
		total := init
		for _, v := range vs {
			n := int(v % 4)
			for i := 0; i < n; i++ {
				s.V()
			}
			total += n
		}
		for i := 0; i < total; i++ {
			if !s.TryP() {
				return false
			}
		}
		return s.Count() == 0 && !s.TryP()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
