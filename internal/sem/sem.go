// Package sem provides counting semaphores with the P/V interface used by
// the micro-protocol pseudocode in Hiltunen & Schlichting (TR 94-28).
//
// The zero value is a semaphore with count 0 (every P blocks until a V).
// Semaphores are safe for concurrent use and never copied after first use.
package sem

import (
	"sync"
	"time"
)

// Sem is a counting semaphore. P decrements the count, blocking while it is
// zero; V increments it, waking one waiter if any. Unlike a mutex, V may be
// called by a goroutine other than the one that called P, which is exactly
// how the RPC micro-protocols hand a blocked client thread its reply.
type Sem struct {
	mu    sync.Mutex
	count int
	wait  []chan struct{}
}

// New returns a semaphore initialized to count. Count 1 behaves as a mutex;
// count 0 as a pure signal.
func New(count int) *Sem {
	return &Sem{count: count}
}

// P acquires one unit, blocking until the count is positive.
func (s *Sem) P() {
	s.mu.Lock()
	if s.count > 0 {
		s.count--
		s.mu.Unlock()
		return
	}
	ch := make(chan struct{})
	s.wait = append(s.wait, ch)
	s.mu.Unlock()
	<-ch
}

// TryP acquires one unit without blocking. It reports whether it succeeded.
func (s *Sem) TryP() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.count > 0 {
		s.count--
		return true
	}
	return false
}

// PTimeout acquires one unit, giving up after d. It reports whether the unit
// was acquired. A timed-out waiter consumes no unit.
func (s *Sem) PTimeout(d time.Duration) bool {
	s.mu.Lock()
	if s.count > 0 {
		s.count--
		s.mu.Unlock()
		return true
	}
	ch := make(chan struct{})
	s.wait = append(s.wait, ch)
	s.mu.Unlock()

	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ch:
		return true
	case <-t.C:
	}

	// Timed out: remove our channel from the wait list, unless a V raced us
	// and already handed over a unit.
	s.mu.Lock()
	for i, w := range s.wait {
		if w == ch {
			s.wait = append(s.wait[:i], s.wait[i+1:]...)
			s.mu.Unlock()
			return false
		}
	}
	s.mu.Unlock()
	// Not on the list: a V selected us concurrently with the timeout. The
	// handoff channel is buffered by the send in V completing only after the
	// waiter is removed, so the unit is ours.
	select {
	case <-ch:
	default:
	}
	return true
}

// V releases one unit, waking the longest-waiting P if any.
func (s *Sem) V() {
	s.mu.Lock()
	if len(s.wait) > 0 {
		ch := s.wait[0]
		s.wait = s.wait[1:]
		s.mu.Unlock()
		close(ch)
		return
	}
	s.count++
	s.mu.Unlock()
}

// Reset forcibly sets the count to n and drops all waiters without waking
// them is never safe; instead Reset wakes every current waiter (their P
// returns) and then sets the count. It models the paper's crash-recovery
// idiom of reinitializing a semaphore (e.g. "sRPC mutex = 0").
func (s *Sem) Reset(n int) {
	s.mu.Lock()
	waiters := s.wait
	s.wait = nil
	s.count = n
	s.mu.Unlock()
	for _, ch := range waiters {
		close(ch)
	}
}

// Count returns the current unit count (waiters imply 0). Intended for tests
// and introspection, not for synchronization decisions.
func (s *Sem) Count() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.count
}

// Waiters returns the number of goroutines currently blocked in P.
func (s *Sem) Waiters() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.wait)
}
