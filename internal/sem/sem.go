// Package sem provides counting semaphores with the P/V interface used by
// the micro-protocol pseudocode in Hiltunen & Schlichting (TR 94-28).
//
// The zero value is a semaphore with count 0 (every P blocks until a V).
// Semaphores are safe for concurrent use and never copied after first use.
package sem

import (
	"sync"
	"time"

	"mrpc/internal/clock"
)

// Sem is a counting semaphore. P decrements the count, blocking while it is
// zero; V increments it, waking one waiter if any. Unlike a mutex, V may be
// called by a goroutine other than the one that called P, which is exactly
// how the RPC micro-protocols hand a blocked client thread its reply.
type Sem struct {
	mu    sync.Mutex
	count int
	wait  []chan struct{}
	// free holds handoff channels retired by completed P calls for reuse,
	// so a park/wake cycle on a long-lived semaphore allocates nothing.
	// Each channel is buffered with capacity 1 and carries at most one
	// pending signal, so handoff sends never block. PTimeout channels are
	// never pooled: an abandoned one may still receive a racing V's signal,
	// which would poison a reused channel with a phantom wake.
	free []chan struct{}
}

// New returns a semaphore initialized to count. Count 1 behaves as a mutex;
// count 0 as a pure signal.
func New(count int) *Sem {
	return &Sem{count: count}
}

// P acquires one unit, blocking until the count is positive.
func (s *Sem) P() {
	s.mu.Lock()
	if s.count > 0 {
		s.count--
		s.mu.Unlock()
		return
	}
	ch := s.getWaiter()
	s.wait = append(s.wait, ch)
	s.mu.Unlock()
	<-ch
	s.mu.Lock()
	s.free = append(s.free, ch)
	s.mu.Unlock()
}

// getWaiter returns a reusable handoff channel. Callers must hold s.mu.
func (s *Sem) getWaiter() chan struct{} {
	if n := len(s.free); n > 0 {
		ch := s.free[n-1]
		s.free = s.free[:n-1]
		return ch
	}
	return make(chan struct{}, 1)
}

// TryP acquires one unit without blocking. It reports whether it succeeded.
func (s *Sem) TryP() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.count > 0 {
		s.count--
		return true
	}
	return false
}

// PTimeout acquires one unit, giving up after d on clk. It reports whether
// the unit was acquired. A timed-out waiter consumes no unit.
func (s *Sem) PTimeout(clk clock.Clock, d time.Duration) bool {
	s.mu.Lock()
	if s.count > 0 {
		s.count--
		s.mu.Unlock()
		return true
	}
	ch := make(chan struct{}, 1) // fresh, never pooled — see Sem.free
	s.wait = append(s.wait, ch)
	s.mu.Unlock()

	timedOut := make(chan struct{})
	t := clk.AfterFunc(d, func() { close(timedOut) })
	defer t.Stop()
	select {
	case <-ch:
		return true
	case <-timedOut:
	}

	// Timed out: remove our channel from the wait list, unless a V raced us
	// and already handed over a unit.
	s.mu.Lock()
	for i, w := range s.wait {
		if w == ch {
			s.wait = append(s.wait[:i], s.wait[i+1:]...)
			s.mu.Unlock()
			return false
		}
	}
	s.mu.Unlock()
	// Not on the list: a V selected us concurrently with the timeout and
	// will signal (or already has signalled) the buffered channel, so the
	// unit is ours. Drain the signal if it has landed; a late send parks
	// harmlessly in the buffer of this never-reused channel.
	select {
	case <-ch:
	default:
	}
	return true
}

// V releases one unit, waking the longest-waiting P if any.
func (s *Sem) V() {
	s.mu.Lock()
	if len(s.wait) > 0 {
		ch := s.wait[0]
		// Copy down instead of reslicing so the wait slice keeps its
		// allocated capacity: a reslice walks the backing array forward and
		// forces a fresh allocation on every later park, which matters for
		// pooled semaphores reused across many calls.
		n := copy(s.wait, s.wait[1:])
		s.wait[n] = nil
		s.wait = s.wait[:n]
		s.mu.Unlock()
		ch <- struct{}{}
		return
	}
	s.count++
	s.mu.Unlock()
}

// Reset forcibly sets the count to n and drops all waiters without waking
// them is never safe; instead Reset wakes every current waiter (their P
// returns) and then sets the count. It models the paper's crash-recovery
// idiom of reinitializing a semaphore (e.g. "sRPC mutex = 0").
func (s *Sem) Reset(n int) {
	s.mu.Lock()
	waiters := s.wait
	s.wait = nil
	s.count = n
	s.mu.Unlock()
	for _, ch := range waiters {
		ch <- struct{}{}
	}
}

// Count returns the current unit count (waiters imply 0). Intended for tests
// and introspection, not for synchronization decisions.
func (s *Sem) Count() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.count
}

// Waiters returns the number of goroutines currently blocked in P.
func (s *Sem) Waiters() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.wait)
}
