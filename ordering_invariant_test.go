package mrpc_test

// Ordering property tests under randomized fault schedules: the guarantees
// of §4.4.6 must hold for every seed, not just the experiment's.

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"mrpc"
)

// seqApp records executed payloads in order.
type seqApp struct {
	mu  sync.Mutex
	log []string
}

func (s *seqApp) Pop(_ *mrpc.Thread, _ mrpc.OpID, args []byte) []byte {
	s.mu.Lock()
	s.log = append(s.log, string(args))
	s.mu.Unlock()
	return args
}

func (s *seqApp) executed() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]string(nil), s.log...)
}

func TestTotalOrderInvariantUnderRandomFaults(t *testing.T) {
	if testing.Short() {
		t.Skip("fault sweep")
	}
	for _, seed := range []int64{2, 7, 19, 41} {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			sys := mrpc.NewSystem(mrpc.SystemOptions{
				Net: mrpc.NetParams{
					Seed:     seed,
					MinDelay: 100 * time.Microsecond,
					MaxDelay: 3 * time.Millisecond,
					LossProb: 0.10,
					DupProb:  0.10,
				},
			})
			defer sys.Stop()

			cfg := mrpc.ReplicatedService()
			cfg.RetransTimeout = 5 * time.Millisecond
			cfg.AcceptanceLimit = 1 // clients race far ahead of slow replicas

			group := sys.Group(1, 2, 3)
			apps := make([]*seqApp, 0, 3)
			for _, id := range group {
				a := &seqApp{}
				apps = append(apps, a)
				if _, err := sys.AddServer(id, cfg, func() mrpc.App { return a }); err != nil {
					t.Fatal(err)
				}
			}
			var clients []*mrpc.Node
			for i := 0; i < 3; i++ {
				c, err := sys.AddClient(mrpc.ProcID(100+i), cfg)
				if err != nil {
					t.Fatal(err)
				}
				clients = append(clients, c)
			}

			const perClient = 15
			var wg sync.WaitGroup
			for _, c := range clients {
				c := c
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < perClient; i++ {
						payload := []byte(fmt.Sprintf("%d:%d", c.ID(), i))
						if _, status, err := c.Call(1, payload, group); err != nil || status != mrpc.StatusOK {
							t.Errorf("client %d call %d: %v %v", c.ID(), i, status, err)
							return
						}
					}
				}()
			}
			wg.Wait()

			// Every replica eventually executes every call, in the same
			// total order.
			want := len(clients) * perClient
			deadline := time.Now().Add(10 * time.Second)
			for {
				done := true
				for _, a := range apps {
					if len(a.executed()) < want {
						done = false
					}
				}
				if done || time.Now().After(deadline) {
					break
				}
				time.Sleep(2 * time.Millisecond)
			}

			ref := apps[0].executed()
			if len(ref) != want {
				t.Fatalf("replica 1 executed %d of %d", len(ref), want)
			}
			for ri, a := range apps[1:] {
				got := a.executed()
				if len(got) != len(ref) {
					t.Fatalf("replica %d executed %d, replica 1 executed %d", ri+2, len(got), len(ref))
				}
				for i := range ref {
					if got[i] != ref[i] {
						t.Fatalf("replica %d diverged at %d: %q vs %q (seed %d)", ri+2, i, got[i], ref[i], seed)
					}
				}
			}
		})
	}
}

func TestCausalPerClientOrderUnderRandomFaults(t *testing.T) {
	if testing.Short() {
		t.Skip("fault sweep")
	}
	// Causal order implies each client's own calls execute in issue order
	// at every replica (a client's calls are causally chained).
	for _, seed := range []int64{3, 11} {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			sys := mrpc.NewSystem(mrpc.SystemOptions{
				Net: mrpc.NetParams{
					Seed:     seed,
					MinDelay: 100 * time.Microsecond,
					MaxDelay: 3 * time.Millisecond,
					LossProb: 0.10,
				},
			})
			defer sys.Stop()

			cfg := mrpc.ExactlyOnce()
			cfg.Ordering = mrpc.OrderCausal
			cfg.RetransTimeout = 5 * time.Millisecond
			cfg.AcceptanceLimit = 1

			group := sys.Group(1, 2)
			apps := make([]*seqApp, 0, 2)
			for _, id := range group {
				a := &seqApp{}
				apps = append(apps, a)
				if _, err := sys.AddServer(id, cfg, func() mrpc.App { return a }); err != nil {
					t.Fatal(err)
				}
			}
			var clients []*mrpc.Node
			for i := 0; i < 2; i++ {
				c, err := sys.AddClient(mrpc.ProcID(100+i), cfg)
				if err != nil {
					t.Fatal(err)
				}
				clients = append(clients, c)
			}

			const perClient = 15
			var wg sync.WaitGroup
			for _, c := range clients {
				c := c
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < perClient; i++ {
						payload := []byte(fmt.Sprintf("%d:%d", c.ID(), i))
						if _, status, err := c.Call(1, payload, group); err != nil || status != mrpc.StatusOK {
							t.Errorf("client %d call %d: %v %v", c.ID(), i, status, err)
							return
						}
					}
				}()
			}
			wg.Wait()

			want := len(clients) * perClient
			deadline := time.Now().Add(10 * time.Second)
			for {
				done := true
				for _, a := range apps {
					if len(a.executed()) < want {
						done = false
					}
				}
				if done || time.Now().After(deadline) {
					break
				}
				time.Sleep(2 * time.Millisecond)
			}

			for ri, a := range apps {
				log := a.executed()
				if len(log) != want {
					t.Fatalf("replica %d executed %d of %d", ri+1, len(log), want)
				}
				next := map[string]int{}
				for _, entry := range log {
					var client, seq int
					fmt.Sscanf(entry, "%d:%d", &client, &seq)
					key := fmt.Sprint(client)
					if seq != next[key] {
						t.Fatalf("replica %d: client %d executed seq %d, want %d (per-client order violated)",
							ri+1, client, seq, next[key])
					}
					next[key] = seq + 1
				}
			}
		})
	}
}
