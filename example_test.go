package mrpc_test

// Runnable godoc examples for the public API.

import (
	"fmt"
	"time"

	"mrpc"
)

// Example shows the minimal end-to-end flow: one server, one client,
// exactly-once semantics over a perfect simulated network.
func Example() {
	sys := mrpc.NewSystem(mrpc.SystemOptions{})
	defer sys.Stop()

	reg := mrpc.NewRegistry()
	hello := reg.Register("hello", func(_ *mrpc.Thread, args []byte) []byte {
		return append([]byte("hello, "), args...)
	})
	if _, err := sys.AddServer(1, mrpc.ExactlyOnce(), func() mrpc.App { return reg }); err != nil {
		fmt.Println(err)
		return
	}
	client, err := sys.AddClient(100, mrpc.ExactlyOnce())
	if err != nil {
		fmt.Println(err)
		return
	}

	reply, status, _ := client.Call(hello, []byte("world"), sys.Group(1))
	fmt.Println(status, string(reply))
	// Output: OK hello, world
}

// ExampleConfig_Validate shows the Figure 4 dependency graph rejecting an
// illegal combination: total ordering requires reliable communication.
func ExampleConfig_Validate() {
	cfg := mrpc.Config{
		Call:            mrpc.CallSynchronous,
		Execution:       mrpc.ExecConcurrent,
		Ordering:        mrpc.OrderTotal, // but Reliable is false
		Unique:          true,
		Orphan:          mrpc.OrphanIgnore,
		AcceptanceLimit: 1,
	}
	fmt.Println(cfg.Validate() != nil)
	cfg.Reliable = true
	fmt.Println(cfg.Validate())
	// Output:
	// true
	// <nil>
}

// ExampleConfig_FailureSemantics shows the Figure 1 classification.
func ExampleConfig_FailureSemantics() {
	fmt.Println(mrpc.AtLeastOnce().FailureSemantics())
	fmt.Println(mrpc.ExactlyOnce().FailureSemantics())
	fmt.Println(mrpc.AtMostOnce().FailureSemantics())
	// Output:
	// at least once
	// exactly once
	// at most once
}

// ExampleNode_CallAsync shows the asynchronous call flow: issue, then
// collect the result later.
func ExampleNode_CallAsync() {
	sys := mrpc.NewSystem(mrpc.SystemOptions{})
	defer sys.Stop()

	reg := mrpc.NewRegistry()
	double := reg.Register("double", func(_ *mrpc.Thread, args []byte) []byte {
		n := mrpc.NewReader(args).Int64()
		return mrpc.NewWriter(8).PutInt64(2 * n).Bytes()
	})
	cfg := mrpc.ExactlyOnce()
	cfg.Call = mrpc.CallAsynchronous
	if _, err := sys.AddServer(1, cfg, func() mrpc.App { return reg }); err != nil {
		fmt.Println(err)
		return
	}
	client, err := sys.AddClient(100, cfg)
	if err != nil {
		fmt.Println(err)
		return
	}

	id, _ := client.CallAsync(double, mrpc.NewWriter(8).PutInt64(21).Bytes(), sys.Group(1))
	// ... do other work ...
	reply, status, _ := client.Collect(id)
	fmt.Println(status, mrpc.NewReader(reply).Int64())
	// Output: OK 42
}

// ExampleConfig_collation shows a user-supplied collation function
// combining the group's replies (here: the numeric maximum).
func ExampleConfig_collation() {
	sys := mrpc.NewSystem(mrpc.SystemOptions{})
	defer sys.Stop()

	cfg := mrpc.ExactlyOnce()
	cfg.AcceptanceLimit = mrpc.AcceptAll
	cfg.Collate = func(accum, reply []byte) []byte {
		if len(accum) == 0 || mrpc.NewReader(reply).Int64() > mrpc.NewReader(accum).Int64() {
			return reply
		}
		return accum
	}

	// Each server reports its own id; the collated answer is the max.
	for id := mrpc.ProcID(1); id <= 3; id++ {
		id := id
		reg := mrpc.NewRegistry()
		reg.RegisterAt(1, "whoami", func(_ *mrpc.Thread, _ []byte) []byte {
			return mrpc.NewWriter(8).PutInt64(int64(id)).Bytes()
		})
		if _, err := sys.AddServer(id, cfg, func() mrpc.App { return reg }); err != nil {
			fmt.Println(err)
			return
		}
	}
	client, err := sys.AddClient(100, cfg)
	if err != nil {
		fmt.Println(err)
		return
	}
	reply, _, _ := client.Call(1, nil, sys.Group(1, 2, 3))
	fmt.Println(mrpc.NewReader(reply).Int64())
	// Output: 3
}

// ExampleNode_Crash shows crash/recovery with bounded termination: while
// the only server is down, calls time out instead of hanging; after
// recovery they succeed again.
func ExampleNode_Crash() {
	sys := mrpc.NewSystem(mrpc.SystemOptions{})
	defer sys.Stop()

	cfg := mrpc.ReadOne() // bounded termination, acceptance 1
	cfg.TimeBound = 50 * time.Millisecond
	cfg.RetransTimeout = 10 * time.Millisecond
	reg := mrpc.NewRegistry()
	ping := reg.Register("ping", func(_ *mrpc.Thread, _ []byte) []byte { return []byte("pong") })
	server, err := sys.AddServer(1, cfg, func() mrpc.App { return reg })
	if err != nil {
		fmt.Println(err)
		return
	}
	client, err := sys.AddClient(100, cfg)
	if err != nil {
		fmt.Println(err)
		return
	}
	group := sys.Group(1)

	_, status, _ := client.Call(ping, nil, group)
	fmt.Println("up:", status)

	server.Crash()
	_, status, _ = client.Call(ping, nil, group)
	fmt.Println("down:", status)

	if err := server.Recover(); err != nil {
		fmt.Println(err)
		return
	}
	_, status, _ = client.Call(ping, nil, group)
	fmt.Println("recovered:", status)
	// Output:
	// up: OK
	// down: TIMEOUT
	// recovered: OK
}
