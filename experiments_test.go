package mrpc_test

import (
	"testing"

	"mrpc/internal/experiments"
)

// TestExperimentsPass runs every paper-figure and characterization
// experiment and asserts its built-in pass criterion. These are the
// repository's end-to-end reproduction checks; EXPERIMENTS.md records the
// same outcomes in prose.
func TestExperimentsPass(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments take several seconds")
	}
	const seed = 7
	for _, r := range experiments.All(seed) {
		t.Run(r.ID, func(t *testing.T) {
			t.Log("\n" + r.String())
			if !r.Pass {
				t.Errorf("%s failed its pass criterion", r.ID)
			}
		})
	}
}
