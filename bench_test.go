package mrpc_test

// One benchmark per experiment of DESIGN.md §3. The per-figure *checks*
// live in experiments_test.go (correctness); these benchmarks measure the
// performance dimension of the same artifacts: per-call cost of every
// micro-protocol ladder step (E6/Figure 4's choices), acceptance and loss
// sweeps (E5/E9/E10), ordering (E7), the monolithic baseline (E8), and the
// configuration machinery itself (E4).

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"mrpc"
	"mrpc/internal/baseline"
	"mrpc/internal/clock"
	"mrpc/internal/config"
	"mrpc/internal/experiments"
	"mrpc/internal/msg"
	"mrpc/internal/netsim"
	"mrpc/internal/p2p"
)

// benchSystem builds one server (echo) and one client with cfg over a
// network with the given params.
func benchSystem(b *testing.B, cfg mrpc.Config, servers int, p mrpc.NetParams) (*mrpc.System, *mrpc.Node, mrpc.Group, mrpc.OpID) {
	b.Helper()
	sys := mrpc.NewSystem(mrpc.SystemOptions{Net: p})
	b.Cleanup(sys.Stop)
	reg := mrpc.NewRegistry()
	echo := reg.Register("echo", func(_ *mrpc.Thread, args []byte) []byte { return args })
	newApp := func() mrpc.App { return reg }
	if cfg.Execution == config.ExecAtomic {
		// Atomic execution needs checkpointable state.
		newApp = func() mrpc.App { return &benchCkApp{} }
	}
	ids := make([]mrpc.ProcID, servers)
	for i := range ids {
		ids[i] = mrpc.ProcID(i + 1)
		if _, err := sys.AddServer(ids[i], cfg, newApp); err != nil {
			b.Fatal(err)
		}
	}
	client, err := sys.AddClient(100, cfg)
	if err != nil {
		b.Fatal(err)
	}
	return sys, client, sys.Group(ids...), echo
}

func benchCalls(b *testing.B, client *mrpc.Node, op mrpc.OpID, group mrpc.Group, payload []byte) {
	b.Helper()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, status, err := client.Call(op, payload, group)
		if err != nil || status != mrpc.StatusOK {
			b.Fatalf("call: %v %v", status, err)
		}
	}
}

// BenchmarkE1FailureSemantics measures an exactly-once call under the
// duplicate-inducing network of E1 (Figure 1's middle row, the common
// production point).
func BenchmarkE1FailureSemantics(b *testing.B) {
	cfg := mrpc.ExactlyOnce()
	cfg.RetransTimeout = 5 * time.Millisecond
	_, client, group, op := benchSystem(b, cfg, 1, mrpc.NetParams{
		Seed: 1, LossProb: 0.05, DupProb: 0.05,
	})
	benchCalls(b, client, op, group, []byte("x"))
}

// BenchmarkE4Enumeration measures enumerating and validating the full
// 198-configuration space (Figure 4's combinatorics).
func BenchmarkE4Enumeration(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if got := len(config.Enumerate()); got != 198 {
			b.Fatalf("count = %d", got)
		}
	}
}

// BenchmarkE4GraphCheck measures the Figure 4 graph validation of one
// configuration's protocol selection.
func BenchmarkE4GraphCheck(b *testing.B) {
	sel := config.ReplicatedService().SelectedProtocols()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if v := config.CheckAgainstGraph(sel); len(v) != 0 {
			b.Fatal(v)
		}
	}
}

// BenchmarkE5ReadOne measures the §5 read-optimized configuration
// (acceptance ONE) against acceptance ALL on a 5-server group.
func BenchmarkE5ReadOne(b *testing.B) {
	for _, tc := range []struct {
		name string
		all  bool
	}{{"AcceptOne", false}, {"AcceptAll", true}} {
		b.Run(tc.name, func(b *testing.B) {
			cfg := config.ReadOne()
			cfg.TimeBound = 10 * time.Second
			cfg.RetransTimeout = 100 * time.Millisecond
			if tc.all {
				cfg.AcceptanceLimit = mrpc.AcceptAll
			}
			_, client, group, op := benchSystem(b, cfg, 5, mrpc.NetParams{})
			benchCalls(b, client, op, group, []byte("read"))
		})
	}
}

// BenchmarkE6Ablation measures the per-call cost of each micro-protocol
// ladder step over a perfect zero-delay network.
func BenchmarkE6Ablation(b *testing.B) {
	for _, c := range experiments.AblationCases() {
		b.Run(sanitize(c.Name), func(b *testing.B) {
			_, client, group, op := benchSystem(b, c.Cfg, 1, mrpc.NetParams{})
			benchCalls(b, client, op, group, nil)
		})
	}
}

// BenchmarkE7Ordering measures call latency under the three ordering
// configurations (3 servers, acceptance ALL so the ordering machinery is
// on the critical path).
func BenchmarkE7Ordering(b *testing.B) {
	for _, mode := range []config.OrderMode{config.OrderNone, config.OrderFIFO, config.OrderTotal, config.OrderCausal} {
		b.Run(mode.String(), func(b *testing.B) {
			cfg := mrpc.Config{
				Call:            config.CallSynchronous,
				Reliable:        true,
				RetransTimeout:  50 * time.Millisecond,
				Unique:          true,
				Execution:       config.ExecConcurrent,
				Ordering:        mode,
				Orphan:          config.OrphanIgnore,
				AcceptanceLimit: mrpc.AcceptAll,
			}
			_, client, group, op := benchSystem(b, cfg, 3, mrpc.NetParams{})
			benchCalls(b, client, op, group, []byte("x"))
		})
	}
}

// BenchmarkE8Monolithic compares the composite protocol against the
// hand-fused monolithic baseline with identical semantics.
func BenchmarkE8Monolithic(b *testing.B) {
	b.Run("Monolithic", func(b *testing.B) {
		clk := clock.NewReal()
		net := netsim.New(clk, netsim.Params{})
		b.Cleanup(net.Stop)
		if _, err := baseline.NewServer(net, 1, func(_ msg.OpID, args []byte) []byte {
			return args
		}); err != nil {
			b.Fatal(err)
		}
		client, err := baseline.NewClient(net, clk, 100, 50*time.Millisecond)
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(client.Close)
		group := msg.NewGroup(1)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			client.Call(1, nil, group, 1)
		}
	})
	b.Run("Composite", func(b *testing.B) {
		cfg := config.ExactlyOncePreset()
		cfg.RetransTimeout = 50 * time.Millisecond
		_, client, group, op := benchSystem(b, cfg, 1, mrpc.NetParams{})
		benchCalls(b, client, op, group, nil)
	})
}

// BenchmarkE9Loss measures exactly-once call latency as the loss rate
// rises (retransmission on the critical path).
func BenchmarkE9Loss(b *testing.B) {
	for _, loss := range []float64{0, 0.1, 0.3} {
		b.Run(fmt.Sprintf("loss%.0f%%", loss*100), func(b *testing.B) {
			cfg := mrpc.ExactlyOnce()
			cfg.RetransTimeout = 2 * time.Millisecond
			_, client, group, op := benchSystem(b, cfg, 1, mrpc.NetParams{
				Seed: 9, LossProb: loss,
			})
			benchCalls(b, client, op, group, []byte("x"))
		})
	}
}

// BenchmarkE10Acceptance measures k-of-5 acceptance on a uniform group
// (the latency shape under heterogeneous delays is E10 in mrpcbench; here
// the protocol-side cost of waiting for more repliers is visible).
func BenchmarkE10Acceptance(b *testing.B) {
	for _, k := range []int{1, 3, 5} {
		b.Run(fmt.Sprintf("k%d", k), func(b *testing.B) {
			cfg := mrpc.ExactlyOnce()
			cfg.RetransTimeout = 50 * time.Millisecond
			cfg.AcceptanceLimit = k
			_, client, group, op := benchSystem(b, cfg, 5, mrpc.NetParams{})
			benchCalls(b, client, op, group, nil)
		})
	}
}

// BenchmarkE11Orphan measures the overhead the orphan-handling
// micro-protocols add to the no-failure fast path.
func BenchmarkE11Orphan(b *testing.B) {
	for _, mode := range []config.OrphanMode{config.OrphanIgnore, config.OrphanAvoidInterference, config.OrphanTerminate} {
		b.Run(mode.String(), func(b *testing.B) {
			cfg := mrpc.AtLeastOnce()
			cfg.RetransTimeout = 50 * time.Millisecond
			cfg.Orphan = mode
			_, client, group, op := benchSystem(b, cfg, 1, mrpc.NetParams{})
			benchCalls(b, client, op, group, nil)
		})
	}
}

// BenchmarkE12Bounded measures the fast path with Bounded Termination
// armed (per-call timer management overhead).
func BenchmarkE12Bounded(b *testing.B) {
	for _, bounded := range []bool{false, true} {
		name := "unbounded"
		if bounded {
			name = "bounded"
		}
		b.Run(name, func(b *testing.B) {
			cfg := mrpc.AtLeastOnce()
			cfg.RetransTimeout = 50 * time.Millisecond
			cfg.Bounded = bounded
			cfg.TimeBound = 10 * time.Second
			_, client, group, op := benchSystem(b, cfg, 1, mrpc.NetParams{})
			benchCalls(b, client, op, group, nil)
		})
	}
}

// BenchmarkE14PointToPoint measures the compact §4.1 point-to-point
// specialization against the composite (see internal/experiments/e14.go
// for the experiment version).
func BenchmarkE14PointToPoint(b *testing.B) {
	clk := clock.NewReal()
	net := netsim.New(clk, netsim.Params{})
	b.Cleanup(net.Stop)
	opts := p2p.Options{Reliable: true, Unique: true, RetransTimeout: 50 * time.Millisecond}
	srv, err := p2p.NewServer(net, 1, opts, func(_ *mrpc.Thread, _ msg.OpID, args []byte) []byte {
		return args
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(srv.Close)
	client, err := p2p.NewClient(net, clk, 100, opts)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(client.Close)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, status := client.Call(1, 1, nil); status != mrpc.StatusOK {
			b.Fatal(status)
		}
	}
}

// BenchmarkTableContention measures call throughput as concurrent caller
// goroutines contend for the framework's call tables: every call inserts and
// removes a pRPC record at the client and an sRPC record at the server, so
// with many callers the table layer itself is the shared hot path. The
// caller counts sweep past typical core counts to expose lock contention.
func BenchmarkTableContention(b *testing.B) {
	for _, callers := range []int{1, 2, 4, 8, 16} {
		b.Run(fmt.Sprintf("callers%d", callers), func(b *testing.B) {
			cfg := mrpc.ExactlyOnce()
			cfg.RetransTimeout = 50 * time.Millisecond
			_, client, group, op := benchSystem(b, cfg, 1, mrpc.NetParams{})
			payload := []byte("x")
			b.ReportAllocs()
			b.ResetTimer()
			var wg sync.WaitGroup
			per := b.N / callers
			if per == 0 {
				per = 1
			}
			for c := 0; c < callers; c++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < per; i++ {
						_, status, err := client.Call(op, payload, group)
						if err != nil || status != mrpc.StatusOK {
							b.Errorf("call: %v %v", status, err)
							return
						}
					}
				}()
			}
			wg.Wait()
		})
	}
}

// BenchmarkWireCodec measures the message codec (every on-wire byte of the
// system goes through it when EncodeOnWire is set).
func BenchmarkWireCodec(b *testing.B) {
	m := &msg.NetMsg{
		Type: msg.OpCall, ID: 1 << 33, Client: 100, Op: 7,
		Args: make([]byte, 256), Server: msg.NewGroup(1, 2, 3), Sender: 100, Inc: 2,
	}
	buf := m.Encode()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		enc := m.Encode()
		if _, err := msg.Decode(enc); err != nil {
			b.Fatal(err)
		}
		_ = buf
	}
}

// benchCkApp is a checkpointable echo app for atomic-execution benchmarks.
type benchCkApp struct{ n int64 }

func (a *benchCkApp) Pop(_ *mrpc.Thread, _ mrpc.OpID, args []byte) []byte {
	a.n++
	return args
}

func (a *benchCkApp) Snapshot() []byte {
	return mrpc.NewWriter(8).PutInt64(a.n).Bytes()
}

func (a *benchCkApp) Restore(data []byte) error {
	a.n = mrpc.NewReader(data).Int64()
	return nil
}

func sanitize(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		switch r {
		case ' ', '(', ')', '+', '/':
			out = append(out, '_')
		default:
			out = append(out, r)
		}
	}
	return string(out)
}
