// Package mrpc is a configurable group RPC service: a from-scratch Go
// implementation of Hiltunen & Schlichting, "Constructing a Configurable
// Group RPC Service" (Univ. of Arizona TR 94-28 / ICDCS 1995).
//
// Instead of one RPC system per combination of semantics, mrpc composes a
// service from micro-protocols, each implementing a single semantic
// property — call synchrony, reliable communication, bounded termination,
// unique/atomic execution, FIFO/total ordering, k-of-n acceptance, reply
// collation, and orphan handling — linked by an event-driven framework
// into a composite protocol.
//
// # Quickstart
//
//	sys := mrpc.NewSystem(mrpc.SystemOptions{})
//	defer sys.Stop()
//
//	reg := mrpc.NewRegistry()
//	echo := reg.Register("echo", func(th *mrpc.Thread, args []byte) []byte {
//		return args
//	})
//	for id := mrpc.ProcID(1); id <= 3; id++ {
//		sys.AddServer(id, mrpc.ExactlyOnce(), func() mrpc.App { return reg })
//	}
//	client, _ := sys.AddClient(100, mrpc.ExactlyOnce())
//
//	reply, status, _ := client.Call(echo, []byte("hi"), sys.Group(1, 2, 3))
//	// status == mrpc.StatusOK, reply == []byte("hi")
//
// The full semantic space (198 legal configurations — the paper's count)
// is described by Config; presets for the common points are provided.
//
// # Live reconfiguration
//
// A running node (or a whole system) can be hot-swapped between legal
// configurations without restarting and without dropping in-flight calls:
//
//	// Upgrade the running group from exactly-once to total-order
//	// replicated-service semantics, concurrent callers and all.
//	if err := sys.Reconfigure(mrpc.ReplicatedService()); err != nil { ... }
//	// ... and back.
//	if err := sys.Reconfigure(mrpc.ExactlyOnce()); err != nil { ... }
//
// Transitions are validated first (config.PlanTransition): properties that
// act per call (acceptance, collation, unique execution, orphan handling,
// serial execution) swap live; properties that span a call's lifetime
// (call synchrony, reliability, deadlines, ordering) drain in-flight calls
// first; changing atomic execution live is rejected — restart the node.
// See DESIGN.md deviation D14.
package mrpc

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"mrpc/internal/clock"
	"mrpc/internal/config"
	"mrpc/internal/core"
	"mrpc/internal/event"
	"mrpc/internal/member"
	"mrpc/internal/msg"
	"mrpc/internal/netsim"
	"mrpc/internal/proc"
	"mrpc/internal/stable"
	"mrpc/internal/stub"
	"mrpc/internal/trace"
	"mrpc/internal/transport"
)

// NewTraceLog returns an empty structured trace log for
// SystemOptions.Trace.
func NewTraceLog() *TraceLog { return trace.NewLog() }

// Re-exported identifier and message types.
type (
	// ProcID identifies a process (site).
	ProcID = msg.ProcID
	// OpID identifies a registered remote operation.
	OpID = msg.OpID
	// CallID identifies an asynchronous call for later collection.
	CallID = msg.CallID
	// Group identifies a server group by its members.
	Group = msg.Group
	// Status is the completion status of a call.
	Status = msg.Status
	// Thread is the killable token under which a procedure executes.
	Thread = proc.Thread
	// Registry dispatches operations on the server side.
	Registry = stub.Registry
	// Config selects one variant of every configurable property.
	Config = config.Config
	// CallMode selects synchronous or asynchronous call semantics.
	CallMode = config.CallSemantics
	// ExecMode selects the server execution property.
	ExecMode = config.ExecMode
	// OrderMode selects the ordering property.
	OrderMode = config.OrderMode
	// OrphanMode selects the orphan-handling property.
	OrphanMode = config.OrphanMode
	// Dissemination selects how group multicasts fan out (D17).
	Dissemination = config.Dissemination
	// CollateFunc folds one server reply into the accumulated result.
	CollateFunc = core.CollateFunc
	// Checkpointable is server state Atomic Execution can snapshot.
	Checkpointable = core.Checkpointable
	// DeltaCheckpointable additionally supports incremental checkpoints
	// (Config.AtomicDeltas).
	DeltaCheckpointable = core.DeltaCheckpointable
	// Transport is the communication substrate seam: the simulator
	// (internal/netsim) and the TCP transport (internal/nettcp) both
	// implement it (see internal/transport).
	Transport = transport.Transport
	// Link is one process's attachment point on a Transport.
	Link = transport.Endpoint
	// NetParams is the simulated network's fault and delay model.
	NetParams = netsim.Params
	// ReorderParams arms the simulator's bounded reorder storms (D19).
	ReorderParams = netsim.ReorderParams
	// LinkProfile is a per-directed-link adversarial profile — asymmetric
	// latency, spikes, bandwidth — installed via System.Sim (D19).
	LinkProfile = netsim.LinkProfile
	// NetStats are the transport counters (shared across substrates).
	NetStats = transport.Stats
	// TraceSink receives structured trace events (SystemOptions.Trace).
	TraceSink = trace.Sink
	// TraceEvent is one structured trace record.
	TraceEvent = trace.Event
	// TraceLog is the standard append-only TraceSink.
	TraceLog = trace.Log
	// Writer packs typed values into RPC argument bytes.
	Writer = stub.Writer
	// Reader unpacks RPC argument bytes.
	Reader = stub.Reader
)

// Call statuses.
const (
	StatusWaiting = msg.StatusWaiting
	StatusOK      = msg.StatusOK
	StatusTimeout = msg.StatusTimeout
	StatusAborted = msg.StatusAborted
)

// AcceptAll makes Acceptance wait for every functioning group member.
const AcceptAll = core.AcceptAll

// Re-exported configuration enums, so applications can assemble a Config
// from the public API alone.
const (
	CallSynchronous  = config.CallSynchronous
	CallAsynchronous = config.CallAsynchronous

	ExecConcurrent = config.ExecConcurrent
	ExecSerial     = config.ExecSerial
	ExecAtomic     = config.ExecAtomic

	OrderNone  = config.OrderNone
	OrderFIFO  = config.OrderFIFO
	OrderTotal = config.OrderTotal
	// OrderCausal is an extension beyond the paper's Figure 4.
	OrderCausal = config.OrderCausal

	OrphanIgnore            = config.OrphanIgnore
	OrphanAvoidInterference = config.OrphanAvoidInterference
	OrphanTerminate         = config.OrphanTerminate

	DissFlat = config.DissFlat
	DissTree = config.DissTree
)

// NewWriter returns an argument packer with the given capacity hint.
func NewWriter(capacity int) *Writer { return stub.NewWriter(capacity) }

// NewReader returns an argument unpacker over buf.
func NewReader(buf []byte) *Reader { return stub.NewReader(buf) }

// Configuration presets (see internal/config for the full space).
var (
	// AtLeastOnce is reliable synchronous group RPC without duplicate
	// suppression.
	AtLeastOnce = config.AtLeastOncePreset
	// ExactlyOnce adds unique execution.
	ExactlyOnce = config.ExactlyOncePreset
	// AtMostOnce adds atomic (checkpointed, serial) execution.
	AtMostOnce = config.AtMostOncePreset
	// ReadOne is the paper's §5 read-optimized configuration.
	ReadOne = config.ReadOne
	// ReplicatedService is the total-order, respond-all configuration.
	ReplicatedService = config.ReplicatedService
)

// NewRegistry returns an empty operation registry.
func NewRegistry() *Registry { return stub.NewRegistry() }

// NewGroup returns a normalized group of the given members.
func NewGroup(members ...ProcID) Group { return msg.NewGroup(members...) }

// App is the server-side user protocol: it executes operations. A stub
// Registry is an App; so is anything implementing Pop. Apps used with
// atomic execution must also implement Checkpointable.
type App = core.Server

// MembershipMode selects how the system tracks server failures.
type MembershipMode int

// Membership modes.
const (
	// MembershipNone runs without a membership service: group membership
	// is effectively constant and calls complete only via enough replies
	// or bounded termination (the paper's default assumption).
	MembershipNone MembershipMode = iota
	// MembershipOracle delivers exact failure/recovery notifications when
	// the test harness crashes or recovers a node.
	MembershipOracle
	// MembershipDetector runs a heartbeat failure detector per node over
	// the simulated (lossy) network. A node's detector monitors the nodes
	// that exist when it is added, so add the observers (typically the
	// clients) last.
	MembershipDetector
)

// SystemOptions configures a distributed system.
type SystemOptions struct {
	// Clock defaults to the real clock.
	Clock clock.Clock
	// Transport is the communication substrate the system's nodes attach
	// to. Default: a fresh simulated network built from Net — the only
	// case in which System.Sim() is non-nil. Pass a nettcp transport (or
	// any other implementation of the seam) to run the same composites
	// over real sockets; Net is then ignored.
	Transport Transport
	// Net is the simulated network's fault/delay model (default: perfect,
	// zero delay). Used only when Transport is nil.
	Net NetParams
	// Membership selects the membership service (default: none).
	Membership MembershipMode
	// HeartbeatInterval and SuspectAfter tune MembershipDetector.
	HeartbeatInterval time.Duration
	SuspectAfter      time.Duration
	// StableWriteLatency is the simulated checkpoint write cost.
	StableWriteLatency time.Duration
	// ReconfigureTimeout bounds how long a drain-class reconfiguration
	// waits for in-flight calls to complete (default 30s).
	ReconfigureTimeout time.Duration
	// Trace, when non-nil, receives structured trace events from every
	// node (call issue/completion, execution, replies, duplicate drops,
	// orphan kills) and from the system lifecycle (crash, recovery,
	// reconfiguration). The conformance harness (internal/check) replays
	// these through its per-property oracles.
	Trace TraceSink
}

// System is a distributed system: a transport, a stable store, an
// optional membership service, and a set of nodes running configured
// composite protocols. The transport is held through the seam interface;
// simulator-only fault controls are reached through Sim().
type System struct {
	clk    clock.Clock
	net    Transport
	sim    *netsim.Network // non-nil only when net is the simulator
	store  *stable.Store
	opts   SystemOptions
	oracle *member.Oracle

	mu    sync.Mutex
	nodes map[ProcID]*Node
}

// NewSystem creates a system with the given options.
func NewSystem(opts SystemOptions) *System {
	if opts.Clock == nil {
		opts.Clock = clock.NewReal()
	}
	if opts.HeartbeatInterval <= 0 {
		opts.HeartbeatInterval = 10 * time.Millisecond
	}
	if opts.SuspectAfter <= 0 {
		opts.SuspectAfter = 5 * opts.HeartbeatInterval
	}
	if opts.ReconfigureTimeout <= 0 {
		opts.ReconfigureTimeout = 30 * time.Second
	}
	s := &System{
		clk:   opts.Clock,
		net:   opts.Transport,
		store: stable.NewStore(opts.Clock, opts.StableWriteLatency),
		opts:  opts,
		nodes: make(map[ProcID]*Node),
	}
	if s.net == nil {
		s.sim = netsim.New(opts.Clock, opts.Net)
		s.net = s.sim
	} else if sim, ok := s.net.(*netsim.Network); ok {
		s.sim = sim
	}
	if opts.Membership == MembershipOracle {
		s.oracle = member.NewOracle()
	}
	return s
}

// NewSimNet builds a standalone simulated network as a Transport — for
// code that drives the substrate directly (baselines, benchmarks) without
// a System around it and without importing the simulator package.
func NewSimNet(clk clock.Clock, p NetParams) Transport { return netsim.New(clk, p) }

// Group returns a normalized group; every id must already be a node.
func (s *System) Group(ids ...ProcID) Group { return msg.NewGroup(ids...) }

// Net returns the system's transport through the seam interface
// (statistics, quiesce) regardless of which substrate is underneath.
func (s *System) Net() Transport { return s.net }

// Sim returns the underlying simulated network when the system runs on
// one, and nil on a real transport. Fault injection (Partition,
// SetLinkDelay) lives here, so code that needs the simulator says so:
//
//	if sim := sys.Sim(); sim != nil { sim.Partition(1, 2, true) }
func (s *System) Sim() *netsim.Network { return s.sim }

// Network returns the underlying simulated network.
//
// Deprecated: use Net for the transport-agnostic interface or Sim for
// simulator-only fault controls. Network panics on a non-simulated
// transport (it predates the transport seam and its callers assume fault
// injection is available).
func (s *System) Network() *netsim.Network {
	if s.sim == nil {
		panic("mrpc: Network() on a non-simulated transport; use Net() or Sim()")
	}
	return s.sim
}

// Store returns the shared stable storage.
func (s *System) Store() *stable.Store { return s.store }

// Clock returns the system clock.
func (s *System) Clock() clock.Clock { return s.clk }

// AddClient adds a node with no server role.
func (s *System) AddClient(id ProcID, cfg Config) (*Node, error) {
	return s.AddNode(id, cfg, nil)
}

// AddServer adds a node whose app executes incoming calls. newApp is
// invoked once now and again after every recovery, modelling the loss of
// volatile state on a crash; with atomic execution configured, the
// RECOVERY event then restores the last checkpoint into the fresh app.
func (s *System) AddServer(id ProcID, cfg Config, newApp func() App) (*Node, error) {
	if newApp == nil {
		return nil, fmt.Errorf("mrpc: AddServer(%d): newApp is required", id)
	}
	return s.AddNode(id, cfg, newApp)
}

// AddNode adds a node; newApp may be nil for a pure client.
func (s *System) AddNode(id ProcID, cfg Config, newApp func() App) (*Node, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	n := &Node{
		sys:    s,
		id:     id,
		site:   proc.NewSite(id),
		cfg:    cfg,
		newApp: newApp,
		cell:   &stable.Cell{},
		cklog:  &stable.Log{},
	}

	s.mu.Lock()
	if _, dup := s.nodes[id]; dup {
		s.mu.Unlock()
		return nil, fmt.Errorf("mrpc: node %d already exists", id)
	}
	ep, err := s.net.Attach(id, nil)
	if err != nil {
		s.mu.Unlock()
		return nil, err
	}
	n.ep = ep
	// Register before starting so a detector's peer snapshot includes
	// this node; start happens outside the lock (it reads the node map
	// through membershipFor).
	s.nodes[id] = n
	s.mu.Unlock()

	if err := n.start(false); err != nil {
		s.mu.Lock()
		delete(s.nodes, id)
		s.mu.Unlock()
		n.ep.SetUp(false)
		return nil, err
	}
	return n, nil
}

// Node returns the node with the given id, if present.
func (s *System) Node(id ProcID) (*Node, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	n, ok := s.nodes[id]
	return n, ok
}

// Quiesce waits for in-flight network deliveries to complete.
func (s *System) Quiesce() { s.net.Quiesce() }

// Stop shuts down every node and the network.
func (s *System) Stop() {
	s.mu.Lock()
	nodes := make([]*Node, 0, len(s.nodes))
	for _, n := range s.nodes {
		nodes = append(nodes, n)
	}
	s.mu.Unlock()
	for _, n := range nodes {
		n.shutdown()
	}
	s.net.Stop()
}

// Reconfigure hot-swaps every node in the system to newCfg, coordinating
// the quiesce across the group: when any node's transition is drain-class,
// admission closes on all nodes together, every in-flight client call runs
// to completion, and the network settles before any node swaps — so no call
// straddles two semantic regimes. Live-class transitions swap each node
// under its dispatch barrier with no drain. Down nodes are not swapped;
// they are given the new configuration for their next Recover. An illegal
// transition on any node rejects the whole reconfiguration before anything
// changes. See DESIGN.md deviation D14.
func (s *System) Reconfigure(newCfg Config) error {
	if err := newCfg.Validate(); err != nil {
		return err
	}

	s.mu.Lock()
	nodes := make([]*Node, 0, len(s.nodes))
	for _, n := range s.nodes {
		nodes = append(nodes, n)
	}
	s.mu.Unlock()
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].id < nodes[j].id })

	// Serialize against every per-node lifecycle operation (Crash, Recover,
	// per-node Reconfigure), acquiring in id order to stay deadlock-free.
	for _, n := range nodes {
		n.lifeMu.Lock()
	}
	defer func() {
		for i := len(nodes) - 1; i >= 0; i-- {
			nodes[i].lifeMu.Unlock()
		}
	}()

	// Phase 1: plan and build. Any illegal transition or build failure
	// rejects the reconfiguration before any node is touched.
	type target struct {
		n      *Node
		comp   *core.Composite
		protos []core.MicroProtocol
	}
	var ups []target
	anyDrain := false
	for _, n := range nodes {
		n.mu.Lock()
		comp, app, down, oldCfg := n.comp, n.app, n.down, n.cfg
		n.mu.Unlock()
		if down {
			continue
		}
		plan, err := config.PlanTransition(oldCfg, newCfg)
		if err != nil {
			return fmt.Errorf("mrpc: node %d: %w", n.id, err)
		}
		if plan.Class == config.TransitionDrain {
			anyDrain = true
		}
		protos, err := n.buildProtocols(newCfg, app)
		if err != nil {
			return err
		}
		ups = append(ups, target{n: n, comp: comp, protos: protos})
	}

	// Phase 2: drain-class quiesce, all of it a hard requirement (a timeout
	// reopens admission and fails the reconfiguration). Client calls must
	// complete everywhere; then the group settles: no in-flight deliveries,
	// no held server records, and no outstanding (re)transmissions. The
	// last condition is what makes the swap sound: once Reliable
	// Communication has settled, every member has received every pre-swap
	// call, so no old-regime call can surface at a member for the first
	// time after the swap — where a new ordering leader would sequence it
	// even though other members already executed it, stalling their entry
	// sequence forever.
	if anyDrain {
		deadline := s.clk.Now().Add(s.opts.ReconfigureTimeout)
		for _, t := range ups {
			t.comp.Framework().CloseAdmission()
		}
		reopen := func() {
			for _, t := range ups {
				t.comp.Framework().OpenAdmission()
			}
		}
		for _, t := range ups {
			if err := t.n.drainClientCalls(t.comp.Framework(), deadline); err != nil {
				reopen()
				return err
			}
		}
		s.net.Quiesce()
		for {
			settled := true
			for _, t := range ups {
				if t.comp.Framework().PendingServerCalls() > 0 || relOutstanding(t.comp) > 0 {
					settled = false
					break
				}
			}
			if settled {
				break
			}
			if !s.clk.Now().Before(deadline) {
				reopen()
				return fmt.Errorf("mrpc: reconfigure drain timed out waiting for the group to settle")
			}
			s.clk.Sleep(time.Millisecond)
			s.net.Quiesce()
		}
	}

	// Phase 3: swap every up node, reopen admission, publish the new
	// configuration on every node (down ones included, for Recover).
	var firstErr error
	for _, t := range ups {
		if err := t.comp.Swap(t.protos); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("mrpc: node %d: %w", t.n.id, err)
		}
	}
	if anyDrain {
		for _, t := range ups {
			t.comp.Framework().OpenAdmission()
		}
	}
	if firstErr != nil {
		return firstErr
	}
	for _, t := range ups {
		t.comp.Framework().SetFlushSize(newCfg.FlushSize)
		t.comp.Framework().SetTreeFanout(newCfg.EffectiveFanout())
	}
	var oldCfg Config
	for i, n := range nodes {
		n.mu.Lock()
		if i == 0 {
			oldCfg = n.cfg
		}
		n.cfg = newCfg
		n.mu.Unlock()
	}
	if sink := s.opts.Trace; sink != nil {
		sink.Record(TraceEvent{Kind: trace.KReconfigure,
			Note: fmt.Sprintf("%s -> %s", oldCfg, newCfg)})
	}
	return nil
}

func (s *System) membershipFor(n *Node) member.Service {
	switch s.opts.Membership {
	case MembershipOracle:
		return s.oracle
	case MembershipDetector:
		peers := make([]ProcID, 0, 8)
		others := make([]*Node, 0, 8)
		s.mu.Lock()
		for id, other := range s.nodes {
			peers = append(peers, id)
			if other != n {
				others = append(others, other)
			}
		}
		s.mu.Unlock()
		peers = append(peers, n.id)
		det := member.NewDetector(s.clk, n.id, peers,
			s.opts.HeartbeatInterval, s.opts.SuspectAfter,
			func(to ProcID) {
				n.ep.Push(to, &msg.NetMsg{
					Type:   msg.OpHeartbeat,
					Sender: n.id,
					Inc:    n.site.Inc(),
				})
			})
		// Record the detector's *beliefs* in the trace (KSuspect /
		// KSuspectClear). Ground truth lives in KCrash/KRecover; the gap
		// between the two streams is what the no-false-suspicion oracle
		// and the gray-failure scenarios (D19) examine.
		if sink := s.opts.Trace; sink != nil {
			det.Subscribe(func(c member.Change) {
				k := trace.KSuspect
				if c.Kind == member.Recovery {
					k = trace.KSuspectClear
				}
				sink.Record(TraceEvent{Kind: k, Site: n.id,
					SiteInc: n.site.Inc(), From: c.Who})
			})
		}
		n.mu.Lock()
		n.detector = det
		n.mu.Unlock()
		// Detectors already running only know the nodes that existed when
		// they started; tell each about this one so heartbeating is
		// symmetric from the first round. (On a recovery the peer is
		// already monitored and AddPeer is a no-op.)
		for _, other := range others {
			if d := other.currentDetector(); d != nil {
				d.AddPeer(n.id)
			}
		}
		return det
	default:
		return member.NewStatic()
	}
}

// Node is one process of the system, running a configured composite
// protocol. Its methods are safe for concurrent use; Call may be invoked
// from many goroutines at once (each models one client thread).
type Node struct {
	sys    *System
	id     ProcID
	site   *proc.Site
	ep     Link
	newApp func() App
	cell   *stable.Cell
	cklog  *stable.Log

	// lifeMu serializes lifecycle operations (start, Crash, Recover,
	// Reconfigure, shutdown) against each other; mu protects the mutable
	// fields and is never held across a blocking operation.
	lifeMu sync.Mutex

	mu       sync.Mutex
	cfg      Config
	comp     *core.Composite
	app      App
	detector *member.Detector
	down     bool
}

// config returns the node's advertised configuration under n.mu — the one
// locked path every internal reader goes through (Reconfigure mutates it).
func (n *Node) config() Config {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.cfg
}

// effective translates an advertised configuration into the one actually
// built for this node: a pure client drops the execution-property
// micro-protocols (serial, atomic), which act only on calls arriving at a
// server and would demand checkpointable state the node does not have.
func (n *Node) effective(cfg Config) Config {
	if n.newApp == nil {
		cfg.Execution = config.ExecConcurrent
	}
	return cfg
}

// currentDetector reads the failure detector under n.mu (it is written on
// the start path and cleared on crash, racing the endpoint handler).
func (n *Node) currentDetector() *member.Detector {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.detector
}

// buildProtocols constructs the micro-protocol instances for cfg against
// app's checkpoint dependencies. Shared by start and Reconfigure.
func (n *Node) buildProtocols(cfg Config, app App) ([]core.MicroProtocol, error) {
	deps := config.BuildDeps{Store: n.sys.store, Cell: n.cell, Log: n.cklog}
	if cp, ok := app.(Checkpointable); ok {
		deps.State = cp
	}
	protos, err := n.effective(cfg).Protocols(deps)
	if err != nil {
		return nil, fmt.Errorf("mrpc: node %d: %w", n.id, err)
	}
	return protos, nil
}

// start builds (or rebuilds, on recovery) the composite protocol.
// The caller guarantees no concurrent start/crash.
func (n *Node) start(isRecovery bool) error {
	var app App
	if n.newApp != nil {
		app = n.newApp()
	}
	protos, err := n.buildProtocols(n.config(), app)
	if err != nil {
		return err
	}

	bus := event.New(n.sys.clk)
	comp, err := core.NewComposite(core.Options{
		Site:       n.site,
		Bus:        bus,
		Net:        n.ep,
		Server:     app,
		Membership: n.sys.membershipFor(n),
		Trace:      n.sys.opts.Trace,
		FlushSize:  n.config().FlushSize,
		TreeFanout: n.config().EffectiveFanout(),
	}, protos...)
	if err != nil {
		return fmt.Errorf("mrpc: node %d: %w", n.id, err)
	}

	n.mu.Lock()
	n.comp = comp
	n.app = app
	n.down = false
	n.mu.Unlock()

	n.ep.SetHandler(func(m *msg.NetMsg) {
		if det := n.currentDetector(); det != nil {
			det.Observe(m.Sender)
		}
		if m.Type == msg.OpHeartbeat {
			return
		}
		comp.Framework().HandleNet(m)
	})
	n.ep.SetUp(true)
	if det := n.currentDetector(); det != nil {
		det.Start()
	}
	if isRecovery {
		comp.Framework().Recover()
	}
	return nil
}

// ID returns the node's process id.
func (n *Node) ID() ProcID { return n.id }

// Link returns the node's attachment to the transport; its per-endpoint
// Stats expose the egress/ingress counters the dissemination experiments
// assert on (D17).
func (n *Node) Link() Link { return n.ep }

// Detector returns the node's heartbeat failure detector, or nil unless the
// system runs MembershipDetector (a crashed node also reports nil until it
// recovers). Tests and operators use it to audit the detector's beliefs
// against ground truth — in particular that a gray-slow member is never on
// its Suspected list.
func (n *Node) Detector() *member.Detector { return n.currentDetector() }

// Endpoint returns the node's attachment to the simulated network, or nil
// on a non-simulated transport.
//
// Deprecated: use Link — the per-endpoint surface is transport-agnostic.
func (n *Node) Endpoint() *netsim.Endpoint {
	ep, _ := n.ep.(*netsim.Endpoint)
	return ep
}

// Config returns the node's current configuration (Reconfigure changes it).
func (n *Node) Config() Config { return n.config() }

// App returns the node's current application instance (nil for clients).
func (n *Node) App() App {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.app
}

// Composite returns the node's composite protocol (introspection: event
// registrations, pending-table sizes).
func (n *Node) Composite() *core.Composite {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.comp
}

// Call issues an RPC to group, blocks until it completes, and returns the
// collated reply and status. It works under either call-semantics
// configuration: with synchronous semantics the calling thread parks on
// the call itself; with asynchronous semantics the issue returns
// immediately and Call then blocks collecting the result — so a caller
// racing a call-mode reconfiguration still gets its reply.
func (n *Node) Call(op OpID, args []byte, group Group) ([]byte, Status, error) {
	n.mu.Lock()
	comp, down := n.comp, n.down
	n.mu.Unlock()
	if down {
		return nil, StatusAborted, fmt.Errorf("mrpc: node %d is down", n.id)
	}
	fw := comp.Framework()
	um := fw.Call(op, args, group)
	if um.Status == StatusWaiting {
		// Asynchronous composite: the issue did not block. Collect now.
		id := um.ID
		core.PutUserMsg(um)
		um = fw.Request(id)
	}
	res, status := um.Args, um.Status
	core.PutUserMsg(um)
	return res, status, nil
}

// CallAsync issues an asynchronous RPC and returns its call id. The node
// must be configured with asynchronous call semantics; the check is made
// while holding the admission gate, so it cannot race a reconfiguration
// that switches the call mode — either the call is admitted under the
// asynchronous composite, or CallAsync rejects it (and the caller can fall
// back to Call, which works under both modes).
func (n *Node) CallAsync(op OpID, args []byte, group Group) (CallID, error) {
	n.mu.Lock()
	comp, down := n.comp, n.down
	n.mu.Unlock()
	if down {
		return 0, fmt.Errorf("mrpc: node %d is down", n.id)
	}
	fw := comp.Framework()
	fw.AdmitEnter()
	if n.config().Call != config.CallAsynchronous {
		fw.AdmitExit()
		return 0, fmt.Errorf("mrpc: node %d is not configured for asynchronous calls", n.id)
	}
	um := fw.CallAdmitted(op, args, group)
	fw.AdmitExit()
	// An asynchronous issue never waits, but collect defensively in case a
	// handler raised the flag (e.g. a mixed composite mid-swap).
	fw.CollectUserMsg(um)
	id := um.ID
	core.PutUserMsg(um)
	return id, nil
}

// Collect blocks until the asynchronous call id completes and returns its
// collated reply and status.
func (n *Node) Collect(id CallID) ([]byte, Status, error) {
	n.mu.Lock()
	comp, down := n.comp, n.down
	n.mu.Unlock()
	if down {
		return nil, StatusAborted, fmt.Errorf("mrpc: node %d is down", n.id)
	}
	um := comp.Framework().Request(id)
	res, status := um.Args, um.Status
	core.PutUserMsg(um)
	return res, status, nil
}

// PipelineBegin opens a pipeline section: outbound messages (calls issued
// with CallAsync, retransmissions, acks) are held in the per-destination
// flush queue and coalesced into batch frames instead of being sent
// immediately. Sections nest; each PipelineBegin must be matched by a
// PipelineEnd. A full lane (Config.FlushSize) still flushes early, so a
// long pipeline is bounded in memory.
func (n *Node) PipelineBegin() {
	n.mu.Lock()
	comp, down := n.comp, n.down
	n.mu.Unlock()
	if down {
		return
	}
	comp.Framework().PipelineBegin()
}

// PipelineEnd closes the innermost pipeline section; when the outermost
// section closes, every held batch is flushed.
func (n *Node) PipelineEnd() {
	n.mu.Lock()
	comp, down := n.comp, n.down
	n.mu.Unlock()
	if down {
		return
	}
	comp.Framework().PipelineEnd()
}

// Flush forces every partially filled batch in the node's flush queue onto
// the network immediately, regardless of pipeline sections.
func (n *Node) Flush() {
	n.mu.Lock()
	comp, down := n.comp, n.down
	n.mu.Unlock()
	if down {
		return
	}
	comp.Framework().Flush()
}

// Crash fails the node: its endpoint goes silent, volatile state (pending
// tables, app memory) is lost, in-progress calls at other sites see only
// silence. With an oracle membership service the failure is announced.
func (n *Node) Crash() {
	n.lifeMu.Lock()
	defer n.lifeMu.Unlock()

	n.mu.Lock()
	if n.down {
		n.mu.Unlock()
		return
	}
	n.down = true
	comp := n.comp
	det := n.detector
	n.detector = nil
	n.mu.Unlock()

	n.ep.SetUp(false)
	if det != nil {
		det.Stop()
	}
	if sink := n.sys.opts.Trace; sink != nil {
		sink.Record(TraceEvent{Kind: trace.KCrash, Site: n.id, SiteInc: n.site.Inc()})
	}
	n.site.Crash()
	comp.Close()
	if n.sys.oracle != nil {
		n.sys.oracle.Fail(n.id)
	}
}

// Recover restarts the node under a new incarnation: a fresh composite
// protocol and a fresh app instance (initial state), after which the
// RECOVERY event runs — restoring the last checkpoint when atomic
// execution is configured. With an oracle membership service the recovery
// is announced.
func (n *Node) Recover() error {
	n.lifeMu.Lock()
	defer n.lifeMu.Unlock()

	n.mu.Lock()
	if !n.down {
		n.mu.Unlock()
		return fmt.Errorf("mrpc: node %d is not down", n.id)
	}
	n.mu.Unlock()

	n.site.Recover()
	if err := n.start(true); err != nil {
		return err
	}
	if sink := n.sys.opts.Trace; sink != nil {
		sink.Record(TraceEvent{Kind: trace.KRecover, Site: n.id, SiteInc: n.site.Inc()})
	}
	if n.sys.oracle != nil {
		n.sys.oracle.Recover(n.id)
	}
	return nil
}

// Reconfigure hot-swaps the node's composite protocol to newCfg without
// restarting the node and without dropping in-flight calls. The transition
// is validated and classified first (config.PlanTransition): live-class
// transitions swap under the dispatch barrier alone; drain-class transitions
// first stop admitting new calls and wait — up to
// SystemOptions.ReconfigureTimeout — for the node's in-flight client calls
// to complete (dispatch keeps running during the wait, so replies and
// retransmissions flow). Illegal transitions (atomicity changes) are
// rejected with a diagnosable error before the node is touched. For a
// group-wide change prefer System.Reconfigure, which quiesces all nodes
// together. See DESIGN.md deviation D14.
func (n *Node) Reconfigure(newCfg Config) error {
	n.lifeMu.Lock()
	defer n.lifeMu.Unlock()

	n.mu.Lock()
	comp, app, down, oldCfg := n.comp, n.app, n.down, n.cfg
	n.mu.Unlock()
	if down {
		return fmt.Errorf("mrpc: node %d is down", n.id)
	}

	plan, err := config.PlanTransition(oldCfg, newCfg)
	if err != nil {
		return fmt.Errorf("mrpc: node %d: %w", n.id, err)
	}
	protos, err := n.buildProtocols(newCfg, app)
	if err != nil {
		return err
	}

	fw := comp.Framework()
	drain := plan.Class == config.TransitionDrain
	if drain {
		deadline := n.sys.clk.Now().Add(n.sys.opts.ReconfigureTimeout)
		fw.CloseAdmission()
		if err := n.drainClientCalls(fw, deadline); err != nil {
			fw.OpenAdmission()
			return err
		}
		// Completed calls may still be retransmitting to members that have
		// not acknowledged receipt (the same-set property). Swapping those
		// entries away would strand the laggards, so wait them out too.
		for relOutstanding(comp) > 0 {
			if n.sys.clk.Now().After(deadline) {
				fw.OpenAdmission()
				return fmt.Errorf("mrpc: node %d: reconfigure drain timed out with outstanding retransmissions", n.id)
			}
			n.sys.clk.Sleep(time.Millisecond)
		}
	}
	err = comp.Swap(protos)
	if drain {
		fw.OpenAdmission()
	}
	if err != nil {
		return fmt.Errorf("mrpc: node %d: %w", n.id, err)
	}
	fw.SetFlushSize(newCfg.FlushSize)
	fw.SetTreeFanout(newCfg.EffectiveFanout())

	n.mu.Lock()
	n.cfg = newCfg
	n.mu.Unlock()
	if sink := n.sys.opts.Trace; sink != nil {
		sink.Record(TraceEvent{Kind: trace.KReconfigure, Site: n.id,
			Note: fmt.Sprintf("%s -> %s", oldCfg, newCfg)})
	}
	return nil
}

// relOutstanding returns the composite's count of calls still being
// (re)transmitted by Reliable Communication, or zero when the protocol is
// not configured.
func relOutstanding(comp *core.Composite) int {
	if rc, ok := comp.Protocol("Reliable Communication").(*core.ReliableCommunication); ok {
		return rc.Outstanding()
	}
	return 0
}

// drainClientCalls polls until the node has no in-flight client calls or the
// deadline passes. Only admission is blocked during the wait; dispatch
// (replies, retransmissions, timer events) keeps running, which is what lets
// the in-flight calls finish.
func (n *Node) drainClientCalls(fw *core.Framework, deadline time.Time) error {
	clk := n.sys.clk
	for {
		waiting := fw.WaitingClientCalls()
		if waiting == 0 {
			return nil
		}
		if clk.Now().After(deadline) {
			return fmt.Errorf("mrpc: node %d: reconfigure drain timed out with %d in-flight calls",
				n.id, waiting)
		}
		clk.Sleep(time.Millisecond)
	}
}

// Down reports whether the node is currently crashed.
func (n *Node) Down() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.down
}

func (n *Node) shutdown() {
	n.lifeMu.Lock()
	defer n.lifeMu.Unlock()

	n.mu.Lock()
	comp := n.comp
	det := n.detector
	n.detector = nil
	n.mu.Unlock()
	n.ep.SetUp(false)
	if det != nil {
		det.Stop()
	}
	comp.Close()
}
