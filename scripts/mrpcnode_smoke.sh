#!/usr/bin/env bash
# mrpcnode_smoke.sh: the multi-process deployment smoke test CI runs.
#
# Builds mrpcnode, starts a 3-member group as separate OS processes on
# localhost TCP, runs a mixed wait/no-wait client workload against it,
# kills one member with SIGKILL mid-run and restarts it. Fails on a
# non-zero client exit or a hang (60s watchdog). The in-repo equivalent
# is TestMultiProcessGroup (cmd/mrpcnode); this script exercises the same
# path without the Go test harness in between.
set -u

cd "$(dirname "$0")/.."

BIN="$(mktemp -d)/mrpcnode"
trap 'rm -rf "$(dirname "$BIN")"' EXIT
go build -o "$BIN" ./cmd/mrpcnode || exit 1

BASE=$(( 7100 + RANDOM % 500 ))
PEERS="1=127.0.0.1:$((BASE)),2=127.0.0.1:$((BASE+1)),3=127.0.0.1:$((BASE+2)),100=127.0.0.1:$((BASE+3))"

pids=()
cleanup() {
  for pid in "${pids[@]}"; do kill "$pid" 2>/dev/null; done
  wait 2>/dev/null
  rm -rf "$(dirname "$BIN")"
}
trap cleanup EXIT

"$BIN" -id 1 -peers "$PEERS" & pids+=($!)
"$BIN" -id 2 -peers "$PEERS" & pids+=($!)
"$BIN" -id 3 -peers "$PEERS" & S3=$!; pids+=($S3)
sleep 0.5

timeout 60 "$BIN" -id 100 -peers "$PEERS" -calls 100 -interval 20ms &
CLIENT=$!

# One member dies mid-workload and comes back: 2-of-3 acceptance keeps the
# client completing, retransmission reattaches the fresh incarnation.
sleep 0.6
kill -9 "$S3"
sleep 0.6
"$BIN" -id 3 -peers "$PEERS" & pids+=($!)

wait "$CLIENT"
rc=$?
if [ "$rc" -eq 124 ]; then
  echo "mrpcnode_smoke: FAIL: client hung past the 60s watchdog" >&2
  exit 1
elif [ "$rc" -ne 0 ]; then
  echo "mrpcnode_smoke: FAIL: client exited $rc" >&2
  exit "$rc"
fi
echo "mrpcnode_smoke: ok (3-process group survived a member restart)"
