package mrpc

import (
	"fmt"
	"testing"
	"time"
)

func newEchoRegistry() (*Registry, OpID) {
	reg := NewRegistry()
	echo := reg.Register("echo", func(_ *Thread, args []byte) []byte {
		return append([]byte("echo:"), args...)
	})
	return reg, echo
}

func TestSmokeSingleServer(t *testing.T) {
	sys := NewSystem(SystemOptions{})
	defer sys.Stop()

	reg, echo := newEchoRegistry()
	if _, err := sys.AddServer(1, ExactlyOnce(), func() App { return reg }); err != nil {
		t.Fatal(err)
	}
	client, err := sys.AddClient(100, ExactlyOnce())
	if err != nil {
		t.Fatal(err)
	}

	reply, status, err := client.Call(echo, []byte("hi"), sys.Group(1))
	if err != nil {
		t.Fatal(err)
	}
	if status != StatusOK {
		t.Fatalf("status = %v, want OK", status)
	}
	if string(reply) != "echo:hi" {
		t.Fatalf("reply = %q, want %q", reply, "echo:hi")
	}
}

func TestSmokeGroupLossyNetwork(t *testing.T) {
	sys := NewSystem(SystemOptions{
		Net: NetParams{
			Seed:     42,
			MinDelay: 100 * time.Microsecond,
			MaxDelay: 2 * time.Millisecond,
			LossProb: 0.2,
			DupProb:  0.1,
		},
	})
	defer sys.Stop()

	reg, echo := newEchoRegistry()
	group := sys.Group(1, 2, 3)
	for _, id := range group {
		if _, err := sys.AddServer(id, ExactlyOnce(), func() App { return reg }); err != nil {
			t.Fatal(err)
		}
	}
	cfg := ExactlyOnce()
	cfg.AcceptanceLimit = AcceptAll
	cfg.RetransTimeout = 5 * time.Millisecond
	client, err := sys.AddClient(100, cfg)
	if err != nil {
		t.Fatal(err)
	}

	for i := 0; i < 20; i++ {
		payload := []byte(fmt.Sprintf("m%d", i))
		reply, status, err := client.Call(echo, payload, group)
		if err != nil {
			t.Fatal(err)
		}
		if status != StatusOK {
			t.Fatalf("call %d: status = %v, want OK", i, status)
		}
		if want := "echo:" + string(payload); string(reply) != want {
			t.Fatalf("call %d: reply = %q, want %q", i, reply, want)
		}
	}
}
