package mrpc_test

import (
	"sync/atomic"
	"testing"
	"time"

	"mrpc"
	"mrpc/internal/clock"
	"mrpc/internal/nettcp"
	"mrpc/internal/proc"
	"mrpc/internal/stub"
)

// tcpSystem builds a System over the TCP transport on loopback with
// auto-assigned ports — the facade's side of the transport seam.
func tcpSystem(t *testing.T) *mrpc.System {
	t.Helper()
	clk := clock.NewReal()
	sys := mrpc.NewSystem(mrpc.SystemOptions{
		Clock:     clk,
		Transport: nettcp.New(clk, nettcp.Options{}),
	})
	t.Cleanup(sys.Stop)
	return sys
}

// TestFacadeOverTCP runs the quickstart shape — three servers, one
// client, reliable + unique + FIFO — over real sockets, including a
// crash/recover cycle through the facade's endpoint controls.
func TestFacadeOverTCP(t *testing.T) {
	if testing.Short() {
		t.Skip("real-socket run in -short mode")
	}
	sys := tcpSystem(t)

	var execs atomic.Int64
	reg := stub.NewRegistry()
	echo := reg.Register("echo", func(_ *proc.Thread, args []byte) []byte {
		execs.Add(1)
		return args
	})
	cfg := mrpc.ExactlyOnce()
	cfg.RetransTimeout = 5 * time.Millisecond
	cfg.AcceptanceLimit = 2
	for id := mrpc.ProcID(1); id <= 3; id++ {
		if _, err := sys.AddServer(id, cfg, func() mrpc.App { return reg }); err != nil {
			t.Fatal(err)
		}
	}
	client, err := sys.AddClient(100, cfg)
	if err != nil {
		t.Fatal(err)
	}
	group := sys.Group(1, 2, 3)

	for i := 0; i < 10; i++ {
		reply, status, err := client.Call(echo, []byte{byte(i)}, group)
		if err != nil || status != mrpc.StatusOK || len(reply) != 1 || reply[0] != byte(i) {
			t.Fatalf("call %d: status %v reply %v err %v", i, status, reply, err)
		}
	}

	// One member down: 2-of-3 acceptance keeps completing over sockets.
	n3, _ := sys.Node(3)
	n3.Crash()
	for i := 10; i < 15; i++ {
		if _, status, err := client.Call(echo, []byte{byte(i)}, group); err != nil || status != mrpc.StatusOK {
			t.Fatalf("call %d with member down: status %v err %v", i, status, err)
		}
	}
	if err := n3.Recover(); err != nil {
		t.Fatal(err)
	}
	for i := 15; i < 20; i++ {
		if _, status, err := client.Call(echo, []byte{byte(i)}, group); err != nil || status != mrpc.StatusOK {
			t.Fatalf("call %d after recovery: status %v err %v", i, status, err)
		}
	}
	if execs.Load() < 20 {
		t.Fatalf("servers executed only %d times", execs.Load())
	}

	st := sys.Net().Stats()
	if st.Sent == 0 || st.Delivered == 0 {
		t.Fatalf("transport stats did not move: %+v", st)
	}
}

// TestSimOnlySurfacesOnTCP pins the seam's contract for simulator-only
// controls on a real transport: Sim() is nil, the per-node simulator
// endpoint is nil, and the deprecated Network() panics rather than
// returning a simulator that is not there.
func TestSimOnlySurfacesOnTCP(t *testing.T) {
	sys := tcpSystem(t)
	if sys.Sim() != nil {
		t.Fatal("Sim() non-nil on a TCP transport")
	}
	n, err := sys.AddClient(1, mrpc.ExactlyOnce())
	if err != nil {
		t.Fatal(err)
	}
	if n.Endpoint() != nil {
		t.Fatal("deprecated Endpoint() non-nil on a TCP transport")
	}
	if n.Link() == nil {
		t.Fatal("Link() nil")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("deprecated Network() did not panic on a TCP transport")
		}
	}()
	sys.Network()
}
