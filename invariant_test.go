package mrpc_test

// End-to-end invariant tests: for a sweep of fault-injection seeds, the
// semantic properties selected by the configuration must hold exactly —
// the repository's property-based companion to the E1 figure check.

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"mrpc"
)

// countingServer counts executions per distinct payload across the group.
type countingServer struct {
	mu      sync.Mutex
	perCall map[string]int
}

func newCountingServer() *countingServer {
	return &countingServer{perCall: make(map[string]int)}
}

func (c *countingServer) Pop(_ *mrpc.Thread, _ mrpc.OpID, args []byte) []byte {
	c.mu.Lock()
	c.perCall[string(args)]++
	c.mu.Unlock()
	return args
}

func (c *countingServer) counts() map[string]int {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]int, len(c.perCall))
	for k, v := range c.perCall {
		out[k] = v
	}
	return out
}

func TestExactlyOnceInvariantUnderRandomFaults(t *testing.T) {
	if testing.Short() {
		t.Skip("fault sweep")
	}
	for _, seed := range []int64{1, 2, 3, 5, 8, 13, 21, 34} {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			sys := mrpc.NewSystem(mrpc.SystemOptions{
				Net: mrpc.NetParams{
					Seed:     seed,
					MinDelay: 100 * time.Microsecond,
					MaxDelay: 4 * time.Millisecond,
					LossProb: 0.15,
					DupProb:  0.15,
				},
			})
			defer sys.Stop()

			cfg := mrpc.ExactlyOnce()
			cfg.RetransTimeout = 2 * time.Millisecond // aggressive: force duplicates
			cfg.AcceptanceLimit = mrpc.AcceptAll

			group := sys.Group(1, 2, 3)
			servers := make([]*countingServer, 0, 3)
			for _, id := range group {
				s := newCountingServer()
				servers = append(servers, s)
				if _, err := sys.AddServer(id, cfg, func() mrpc.App { return s }); err != nil {
					t.Fatal(err)
				}
			}
			client, err := sys.AddClient(100, cfg)
			if err != nil {
				t.Fatal(err)
			}

			const calls = 30
			for i := 0; i < calls; i++ {
				payload := []byte(fmt.Sprintf("call-%d", i))
				_, status, err := client.Call(1, payload, group)
				if err != nil || status != mrpc.StatusOK {
					t.Fatalf("call %d: %v %v", i, status, err)
				}
			}
			// Let straggler duplicates drain, then check the invariant.
			sys.Quiesce()
			time.Sleep(20 * time.Millisecond)
			sys.Quiesce()

			dups := sys.Net().Stats().Duplicated
			if dups == 0 {
				t.Logf("seed %d produced no duplicates; invariant still checked", seed)
			}
			for si, s := range servers {
				counts := s.counts()
				if len(counts) != calls {
					t.Fatalf("server %d executed %d distinct calls, want %d", si+1, len(counts), calls)
				}
				for call, n := range counts {
					if n != 1 {
						t.Fatalf("server %d executed %s %d times (exactly-once violated)", si+1, call, n)
					}
				}
			}
		})
	}
}

func TestAtLeastOnceNeverLosesAcceptedCalls(t *testing.T) {
	if testing.Short() {
		t.Skip("fault sweep")
	}
	for _, seed := range []int64{4, 9, 16} {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			sys := mrpc.NewSystem(mrpc.SystemOptions{
				Net: mrpc.NetParams{
					Seed:     seed,
					MinDelay: 100 * time.Microsecond,
					MaxDelay: 3 * time.Millisecond,
					LossProb: 0.25,
				},
			})
			defer sys.Stop()

			cfg := mrpc.AtLeastOnce()
			cfg.RetransTimeout = 2 * time.Millisecond
			s := newCountingServer()
			if _, err := sys.AddServer(1, cfg, func() mrpc.App { return s }); err != nil {
				t.Fatal(err)
			}
			client, err := sys.AddClient(100, cfg)
			if err != nil {
				t.Fatal(err)
			}

			const calls = 40
			for i := 0; i < calls; i++ {
				payload := []byte(fmt.Sprintf("c%d", i))
				if _, status, err := client.Call(1, payload, sys.Group(1)); err != nil || status != mrpc.StatusOK {
					t.Fatalf("call %d: %v %v", i, status, err)
				}
			}
			sys.Quiesce()
			for call, n := range s.counts() {
				if n < 1 {
					t.Fatalf("%s executed %d times", call, n)
				}
			}
			if got := len(s.counts()); got != calls {
				t.Fatalf("%d distinct calls executed, want %d (at-least-once)", got, calls)
			}
		})
	}
}

func TestBoundedAsyncCollectTimesOut(t *testing.T) {
	sys := mrpc.NewSystem(mrpc.SystemOptions{})
	defer sys.Stop()

	cfg := mrpc.AtLeastOnce()
	cfg.Call = mrpc.CallAsynchronous
	cfg.Bounded = true
	cfg.TimeBound = 30 * time.Millisecond
	cfg.RetransTimeout = 5 * time.Millisecond
	client, err := sys.AddClient(100, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// No server 1 exists: the call can never complete; the bound fires.
	id, err := client.CallAsync(1, []byte("x"), sys.Group(1))
	if err != nil {
		t.Fatal(err)
	}
	t0 := time.Now()
	_, status, err := client.Collect(id)
	if err != nil {
		t.Fatal(err)
	}
	if status != mrpc.StatusTimeout {
		t.Fatalf("status = %v, want TIMEOUT", status)
	}
	if elapsed := time.Since(t0); elapsed > 5*time.Second {
		t.Fatalf("collect took %v", elapsed)
	}
}
